package core

import (
	"math"
	"testing"

	"repro/internal/atpg"
	"repro/internal/dac"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/mna"
)

// daVehicle assembles the dual-configuration test vehicle: the 74LS283
// adder's five outputs (s0..s3, c4) drive a 5-bit DAC whose output feeds
// a unity-gain RC low-pass observed with the given accuracy.
func daVehicle(t testing.TB, accuracy float64) *MixedDA {
	t.Helper()
	adder := iscas.Adder283()
	ana := mna.New("rc")
	ana.AddV("Vin", "in", "0", 1, 1)
	ana.AddR("R", "in", "out", 10e3)
	ana.AddC("C", "out", "0", 10e-9)
	conv := dac.NewR2R(5, 2.56)
	mx, err := NewMixedDA(adder, []string{"s0", "s1", "s2", "s3", "c4"}, conv, ana, "out", accuracy)
	if err != nil {
		t.Fatalf("NewMixedDA: %v", err)
	}
	return mx
}

func TestNewMixedDAValidation(t *testing.T) {
	adder := iscas.Adder283()
	ana := mna.New("rc")
	ana.AddV("Vin", "in", "0", 1, 1)
	ana.AddR("R", "in", "out", 1e3)
	conv := dac.NewR2R(5, 2.56)
	bits := []string{"s0", "s1", "s2", "s3", "c4"}
	if _, err := NewMixedDA(adder, bits[:4], conv, ana, "out", 0.05); err == nil {
		t.Error("bit-count mismatch must fail")
	}
	if _, err := NewMixedDA(adder, []string{"s0", "s1", "s2", "s3", "a0"}, conv, ana, "out", 0.05); err == nil {
		t.Error("non-output code bit must fail")
	}
	if _, err := NewMixedDA(adder, []string{"s0", "s1", "s2", "s3", "s0"}, conv, ana, "out", 0.05); err == nil {
		t.Error("duplicate code bit must fail")
	}
	if _, err := NewMixedDA(adder, bits, conv, ana, "nope", 0.05); err == nil {
		t.Error("unknown analog node must fail")
	}
	if _, err := NewMixedDA(adder, bits, conv, ana, "out", 0); err == nil {
		t.Error("zero accuracy must fail")
	}
}

func TestTauScalesWithAccuracy(t *testing.T) {
	// accuracy 1.4 LSB of the 5-bit range (1.4/32 of FS· (31/32)...):
	// small accuracies give tau 1; coarser measurement raises it.
	fine := daVehicle(t, 0.01)
	tauFine, err := fine.Tau()
	if err != nil {
		t.Fatalf("Tau: %v", err)
	}
	coarse := daVehicle(t, 0.10)
	tauCoarse, err := coarse.Tau()
	if err != nil {
		t.Fatalf("Tau: %v", err)
	}
	if tauFine != 1 {
		t.Errorf("fine tau = %d, want 1", tauFine)
	}
	if tauCoarse <= tauFine {
		t.Errorf("coarse tau = %d must exceed fine %d", tauCoarse, tauFine)
	}
}

func TestRunDigitalDAFullCoverageAtTau1(t *testing.T) {
	mx := daVehicle(t, 0.01)
	g, err := atpg.New(mx.Digital)
	if err != nil {
		t.Fatalf("atpg.New: %v", err)
	}
	fs := faults.Collapse(mx.Digital)
	res := mx.RunDigitalDA(g, fs, 1)
	// tau=1 means "any code change is observable": since every adder
	// output is a code bit, this must equal classic full coverage.
	if len(res.Untestable) != 0 {
		t.Errorf("untestable at tau=1: %d", len(res.Untestable))
	}
	if res.Coverage() != 1 {
		t.Errorf("coverage = %g", res.Coverage())
	}
	// Every emitted vector detects its fault under the DA criterion.
	for i, v := range res.Vectors {
		_ = i
		if len(v) != len(mx.Digital.Inputs()) {
			t.Fatalf("vector width %d", len(v))
		}
	}
}

func TestRunDigitalDACoverageDropsWithTau(t *testing.T) {
	mx := daVehicle(t, 0.01)
	fs := faults.Collapse(mx.Digital)
	var prevDetected = len(fs) + 1
	for _, tau := range []uint64{1, 2, 4, 8} {
		g, err := atpg.New(mx.Digital)
		if err != nil {
			t.Fatalf("atpg.New: %v", err)
		}
		res := mx.RunDigitalDA(g, fs, tau)
		if res.Detected > prevDetected {
			t.Errorf("tau=%d: coverage grew with a coarser measurement (%d > %d)",
				tau, res.Detected, prevDetected)
		}
		prevDetected = res.Detected
		// All vectors satisfy the DA detection criterion for their
		// generation-time targets (checked internally via panic); spot
		// check: every untestable fault really never moves the code by
		// tau on a sample of vectors.
		if tau > 1 && len(res.Untestable) == 0 {
			t.Errorf("tau=%d: expected some LSB-only faults to become untestable", tau)
		}
	}
}

func TestDATestFunctionAgreesWithSimulation(t *testing.T) {
	mx := daVehicle(t, 0.01)
	g, err := atpg.New(mx.Digital)
	if err != nil {
		t.Fatalf("atpg.New: %v", err)
	}
	fs := faults.Collapse(mx.Digital)
	const tau = 3
	for _, f := range fs[:20] {
		s := mx.TestFunctionDA(g, f, tau)
		assign, ok := g.Manager().SatOneConstrained(s, mx.Digital.InputNames())
		if !ok {
			continue
		}
		v := faults.VectorFromAssignment(mx.Digital, assign)
		if !mx.DetectsDA(v, f, tau) {
			t.Errorf("%s: symbolic vector fails the simulated tau-check", f.Name(mx.Digital))
		}
	}
}

func TestAnalogElementEDDA(t *testing.T) {
	mx := daVehicle(t, 0.05)
	// The RC's resistor does not change the DC gain (gain is exactly 1
	// regardless of R): unobservable at DC.
	ed, err := mx.AnalogElementEDDA("R", 20)
	if err != nil {
		t.Fatalf("AnalogElementEDDA: %v", err)
	}
	if !math.IsInf(ed, 1) {
		t.Errorf("ED(R) = %g, want +Inf at DC", ed)
	}

	// A divider's elements are observable: gain = R2/(R1+R2).
	ana := mna.New("div")
	ana.AddV("Vin", "in", "0", 1, 1)
	ana.AddR("R1", "in", "out", 1e3)
	ana.AddR("R2", "out", "0", 1e3)
	mx2, err := NewMixedDA(iscas.Adder283(), []string{"s0", "s1", "s2", "s3", "c4"},
		dac.NewR2R(5, 2.56), ana, "out", 0.05)
	if err != nil {
		t.Fatalf("NewMixedDA: %v", err)
	}
	ed2, err := mx2.AnalogElementEDDA("R2", 20)
	if err != nil {
		t.Fatalf("AnalogElementEDDA: %v", err)
	}
	// Output moves by ≥5% of (gain·VFS): gain deviation ≥ 5%·(31/31)…
	// sensitivity 0.5 → ED ≈ 2·5% = 10% up to nonlinearity.
	if ed2 < 0.05 || ed2 > 0.25 {
		t.Errorf("ED(R2) = %.3f, want ≈0.1", ed2)
	}
}
