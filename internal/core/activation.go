package core

import (
	"fmt"
	"math"

	"repro/internal/analog"
	"repro/internal/waveform"
)

// Bound selects which edge of the tolerance box an activation probes —
// Table 1 needs two vectors per parameter, "one to test the upper bound
// of a parameter deviation and the other to test the lower bound".
type Bound int

// Tolerance-box bounds.
const (
	UpperBound Bound = iota // parameter pushed above +tol
	LowerBound              // parameter pushed below −tol
)

func (b Bound) String() string {
	if b == UpperBound {
		return "upper"
	}
	return "lower"
}

// Activation is one planned analog fault activation: the stimulus to
// apply at the analog primary input and the composite values it produces
// on the conversion block's outputs for the given faulty condition.
type Activation struct {
	Stim       waveform.Stimulus
	Target     int                  // comparator meant to toggle (1-based)
	Pattern    []waveform.Composite // all comparator outputs, index k-1
	Composites int                  // number of composite entries in Pattern
}

// PlanActivation chooses the stimulus that tests one bound of one analog
// element's worst-case deviation through one comparator, per the rules of
// Table 1, and returns the full composite pattern of the conversion
// block. The element is perturbed by ±delta (sign from the bound) — the
// computed worst-case deviation ED — and the amplitude is placed so the
// target comparator separates the fault-free and faulty responses.
//
// ok is false when the responses do not differ at the measurement
// frequency (the comparator cannot see this element through this
// parameter) or the required amplitude is unreasonable.
func (mx *Mixed) PlanActivation(elem string, delta float64, p analog.Parameter, bound Bound, target int) (Activation, bool, error) {
	f, kind, err := mx.measurementFreqFor(p)
	if err != nil {
		return Activation{}, false, err
	}
	sign := 1.0
	if bound == LowerBound {
		sign = -1
	}
	stimProbe := waveform.Stimulus{Kind: kind, Amplitude: 1, Freq: f}
	g0, err := waveform.ResponseAmplitude(mx.Analog, mx.AnalogOut, stimProbe)
	if err != nil {
		return Activation{}, false, err
	}
	restore := mx.Analog.Perturb(elem, sign*delta)
	g1, err := waveform.ResponseAmplitude(mx.Analog, mx.AnalogOut, stimProbe)
	restore()
	if err != nil {
		return Activation{}, false, err
	}
	if g0 <= 0 || g1 <= 0 {
		return Activation{}, false, nil
	}
	rel := math.Abs(g0-g1) / math.Max(g0, g1)
	if rel < 1e-9 {
		return Activation{}, false, nil // parameter blind to this element here
	}
	vt := mx.Conv.Threshold(target)
	// Amplitude that puts Vt between the two responses: the paper's
	// B = Vref/((1±x)·A_n) rows of Table 1 are exactly this placement.
	amp := 2 * vt / (g0 + g1)
	if amp <= 0 || math.IsInf(amp, 0) || math.IsNaN(amp) {
		return Activation{}, false, nil
	}
	stim := waveform.Stimulus{Kind: kind, Amplitude: amp, Freq: f}
	pattern := make([]waveform.Composite, mx.Conv.NumComparators())
	composites := 0
	for k := 1; k <= mx.Conv.NumComparators(); k++ {
		cv := waveform.Classify(amp*g0, amp*g1, mx.Conv.Threshold(k))
		pattern[k-1] = cv
		if cv.IsComposite() {
			composites++
		}
	}
	if !pattern[target-1].IsComposite() {
		return Activation{}, false, nil
	}
	return Activation{Stim: stim, Target: target, Pattern: pattern, Composites: composites}, true, nil
}

// measurementFreqFor maps a parameter to the stimulus frequency that
// makes its deviation visible in the response amplitude — the frequency
// column of Table 1. DC parameters use a DC stimulus; AC gains their own
// frequency; center-frequency/cut-off parameters are probed at the
// nominal frequency they define, where a frequency shift converts into a
// gain change (the paper's x% → y% relation).
func (mx *Mixed) measurementFreqFor(p analog.Parameter) (float64, waveform.StimKind, error) {
	switch q := p.(type) {
	case analog.DCGain:
		return 0, waveform.DC, nil
	case analog.ACGain:
		return q.Freq, waveform.Sine, nil
	case analog.MaxGain:
		f, err := (analog.CenterFreq{Label: q.Label, Out: q.Out, Lo: q.Lo, Hi: q.Hi}).Measure(mx.Analog)
		return f, waveform.Sine, err
	case analog.CenterFreq:
		f, err := (analog.CutoffFreq{Label: q.Label, Out: q.Out, Side: analog.HighSide,
			Ref: analog.RefPeak, Lo: q.Lo, Hi: q.Hi}).Measure(mx.Analog)
		return f, waveform.Sine, err
	case analog.CutoffFreq:
		f, err := q.Measure(mx.Analog)
		return f, waveform.Sine, err
	default:
		return 0, waveform.Sine, fmt.Errorf("core: no activation rule for parameter %T(%s)", p, p.Name())
	}
}
