// Package numeric provides the small numerical substrate used by the
// analog-simulation side of the repository: dense linear solvers over the
// real and complex fields, scalar root finding, one-dimensional
// maximisation, and polynomial helpers.
//
// The package is deliberately self-contained (stdlib only) and tuned for
// the matrix sizes that arise from Modified Nodal Analysis of the paper's
// case-study filters — tens of unknowns, dense, well-conditioned after
// partial pivoting.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrSingular is returned by the linear solvers when elimination meets a
// pivot whose magnitude is below the singularity threshold.
var ErrSingular = errors.New("numeric: matrix is singular to working precision")

// pivotEps is the relative magnitude below which a pivot is treated as zero.
const pivotEps = 1e-13

// SolveComplex solves the dense linear system A·x = b over the complex
// numbers using Gaussian elimination with partial pivoting. A is given in
// row-major order and is modified in place, as is b; the solution is
// returned in a fresh slice. The matrix must be square and match len(b).
func SolveComplex(a [][]complex128, b []complex128) ([]complex128, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("numeric: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: dimension mismatch: %d rows, %d rhs", n, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("numeric: row %d has %d columns, want %d", i, len(row), n)
		}
	}

	// Scale factor per row for scaled partial pivoting keeps the
	// elimination stable when MNA stamps mix conductances of very
	// different magnitudes (1/R vs. ωC).
	scale := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if m := cmplx.Abs(a[i][j]); m > s {
				s = m
			}
		}
		if s == 0 {
			return nil, ErrSingular
		}
		scale[i] = s
	}

	for k := 0; k < n; k++ {
		// Select pivot row.
		p, best := k, cmplx.Abs(a[k][k])/scale[k]
		for i := k + 1; i < n; i++ {
			if m := cmplx.Abs(a[i][k]) / scale[i]; m > best {
				p, best = i, m
			}
		}
		if best < pivotEps {
			return nil, ErrSingular
		}
		if p != k {
			a[p], a[k] = a[k], a[p]
			b[p], b[k] = b[k], b[p]
			scale[p], scale[k] = scale[k], scale[p]
		}
		piv := a[k][k]
		for i := k + 1; i < n; i++ {
			if a[i][k] == 0 {
				continue
			}
			m := a[i][k] / piv
			a[i][k] = 0
			for j := k + 1; j < n; j++ {
				a[i][j] -= m * a[k][j]
			}
			b[i] -= m * b[k]
		}
	}

	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// SolveReal solves A·x = b over the reals with scaled partial pivoting.
// A and b are modified in place.
func SolveReal(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("numeric: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: dimension mismatch: %d rows, %d rhs", n, len(b))
	}
	ac := make([][]complex128, n)
	bc := make([]complex128, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("numeric: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		ac[i] = make([]complex128, n)
		for j := range a[i] {
			ac[i][j] = complex(a[i][j], 0)
		}
		bc[i] = complex(b[i], 0)
	}
	xc, err := SolveComplex(ac, bc)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for i := range xc {
		x[i] = real(xc[i])
	}
	return x, nil
}

// NewComplexMatrix allocates an n×n zero matrix backed by a single slice so
// repeated AC sweeps reuse cache-friendly storage.
func NewComplexMatrix(n int) [][]complex128 {
	backing := make([]complex128, n*n)
	m := make([][]complex128, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

// CloneComplexMatrix deep-copies m.
func CloneComplexMatrix(m [][]complex128) [][]complex128 {
	out := NewComplexMatrix(len(m))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

// MatVecComplex returns A·x.
func MatVecComplex(a [][]complex128, x []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		var s complex128
		for j := range x {
			s += a[i][j] * x[j]
		}
		out[i] = s
	}
	return out
}

// ResidualNorm returns the infinity norm of A·x − b, used by tests to check
// solver accuracy.
func ResidualNorm(a [][]complex128, x, b []complex128) float64 {
	r := MatVecComplex(a, x)
	worst := 0.0
	for i := range r {
		if d := cmplx.Abs(r[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Linspace returns n points evenly spaced over [lo, hi] inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n points evenly spaced in log10 over [lo, hi]; lo and hi
// must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		//lint:allow nopanic positive-bounds precondition
		panic("numeric: Logspace requires positive bounds")
	}
	pts := Linspace(math.Log10(lo), math.Log10(hi), n)
	for i, p := range pts {
		pts[i] = math.Pow(10, p)
	}
	if n > 0 {
		pts[0], pts[n-1] = lo, hi
	}
	return pts
}
