package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is handed an interval whose
// endpoints do not straddle a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Bisect finds a root of f in [lo, hi] to within tol using bisection.
// f(lo) and f(hi) must have opposite signs (zero endpoints are accepted).
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 || hi-lo < tol {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Brent finds a root of f in [lo, hi] using Brent's method (inverse
// quadratic interpolation with bisection fallback). It converges much
// faster than plain bisection on the smooth deviation curves produced by
// the analog sensitivity engine.
func Brent(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo34 := (3*a + b) / 4
		cond := (s < math.Min(lo34, b) || s > math.Max(lo34, b)) ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// GoldenMax finds the argument in [lo, hi] that maximises the unimodal
// function f, to within tol, using golden-section search. Used to locate a
// filter's center frequency (gain peak) on a log-frequency axis.
func GoldenMax(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	const invPhi = 0.6180339887498949 // 1/φ
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for math.Abs(b-a) > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// ExpandBracket grows the interval [lo, hi] geometrically around hi until
// f changes sign relative to f(lo) or the limit is reached. Returns the
// bracketing interval. Used to bracket worst-case deviation crossings whose
// location can range from a few percent to several hundred percent.
func ExpandBracket(f func(float64) float64, lo, hi, limit float64) (a, b float64, err error) {
	fa := f(lo)
	if fa == 0 {
		return lo, lo, nil
	}
	step := hi - lo
	if step <= 0 {
		return 0, 0, errors.New("numeric: ExpandBracket requires hi > lo")
	}
	a, b = lo, hi
	for i := 0; i < 80; i++ {
		fb := f(b)
		if fb == 0 || math.Signbit(fa) != math.Signbit(fb) {
			return a, b, nil
		}
		a = b
		step *= 1.6
		b += step
		if b > limit {
			b = limit
			fb = f(b)
			if math.Signbit(fa) != math.Signbit(fb) {
				return a, b, nil
			}
			return 0, 0, ErrNoBracket
		}
	}
	return 0, 0, ErrNoBracket
}
