package numeric

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %g, want 17", got)
	}
	if got := p.Eval(0); got != 1 {
		t.Errorf("Eval(0) = %g, want 1", got)
	}
	if got := (Poly{}).Eval(5); got != 0 {
		t.Errorf("empty Eval = %g, want 0", got)
	}
}

func TestPolyEvalComplex(t *testing.T) {
	p := Poly{0, 0, 1} // s²
	got := p.EvalComplex(1i)
	if cmplx.Abs(got-(-1)) > 1e-15 {
		t.Errorf("s² at j = %v, want -1", got)
	}
}

func TestPolyDerivative(t *testing.T) {
	p := Poly{5, 3, 2, 1} // 5 + 3x + 2x² + x³
	d := p.Derivative()
	want := Poly{3, 4, 3}
	if len(d) != len(want) {
		t.Fatalf("len = %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	if got := (Poly{7}).Derivative(); len(got) != 1 || got[0] != 0 {
		t.Errorf("constant derivative = %v, want [0]", got)
	}
}

func TestPolyMulAddScale(t *testing.T) {
	p := Poly{1, 1}  // 1 + x
	q := Poly{-1, 1} // -1 + x
	prod := p.Mul(q) // x² - 1
	if prod.Eval(3) != 8 {
		t.Errorf("(1+x)(x-1) at 3 = %g, want 8", prod.Eval(3))
	}
	sum := p.Add(q) // 2x
	if sum.Eval(3) != 6 {
		t.Errorf("sum at 3 = %g, want 6", sum.Eval(3))
	}
	sc := p.Scale(4)
	if sc.Eval(1) != 8 {
		t.Errorf("scale at 1 = %g, want 8", sc.Eval(1))
	}
}

func TestPolyDegree(t *testing.T) {
	if d := (Poly{1, 2, 0, 0}).Degree(); d != 1 {
		t.Errorf("degree = %d, want 1", d)
	}
	if d := (Poly{0}).Degree(); d != 0 {
		t.Errorf("degree of zero poly = %d, want 0", d)
	}
}

// Property: evaluation is a ring homomorphism — (p·q)(x) = p(x)·q(x) and
// (p+q)(x) = p(x)+q(x).
func TestPolyRingProperty(t *testing.T) {
	f := func(a, b, c, d, x float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 100)
		}
		p := Poly{clamp(a), clamp(b)}
		q := Poly{clamp(c), clamp(d)}
		xx := clamp(x)
		mul := p.Mul(q).Eval(xx)
		add := p.Add(q).Eval(xx)
		okMul := ApproxEqual(mul, p.Eval(xx)*q.Eval(xx), 1e-9)
		okAdd := ApproxEqual(add, p.Eval(xx)+q.Eval(xx), 1e-9)
		return okMul && okAdd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChebyshevPoles(t *testing.T) {
	poles := ChebyshevPoles(5, 0.5)
	if len(poles) != 5 {
		t.Fatalf("len = %d, want 5", len(poles))
	}
	for i, p := range poles {
		if real(p) >= 0 {
			t.Errorf("pole %d = %v not in left half plane", i, p)
		}
	}
	// Poles come in conjugate pairs plus one real pole for odd order.
	realPoles := 0
	for _, p := range poles {
		if math.Abs(imag(p)) < 1e-12 {
			realPoles++
		}
	}
	if realPoles != 1 {
		t.Errorf("real poles = %d, want 1 for odd order", realPoles)
	}
	if got := ChebyshevPoles(0, 1); got != nil {
		t.Errorf("order 0 = %v, want nil", got)
	}
}

func TestDbRoundTrip(t *testing.T) {
	for _, m := range []float64{0.001, 0.5, 1, 2, 1000} {
		if got := FromDb(Db(m)); math.Abs(got/m-1) > 1e-12 {
			t.Errorf("round trip %g -> %g", m, got)
		}
	}
	if Db(1) != 0 {
		t.Errorf("Db(1) = %g, want 0", Db(1))
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.04, 1e-3) {
		t.Error("100 ~ 100.04 at 1e-3 should hold")
	}
	if ApproxEqual(100, 101, 1e-3) {
		t.Error("100 !~ 101 at 1e-3")
	}
	if !ApproxEqual(0, 1e-6, 1e-3) {
		t.Error("near-zero absolute comparison should hold")
	}
}
