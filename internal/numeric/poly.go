package numeric

import "math"

// Poly is a real polynomial stored low-degree-first: Poly{c0, c1, c2}
// represents c0 + c1·x + c2·x².
type Poly []float64

// Eval evaluates the polynomial at x using Horner's rule.
func (p Poly) Eval(x float64) float64 {
	var acc float64
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + p[i]
	}
	return acc
}

// EvalComplex evaluates the polynomial at the complex point s. This is the
// workhorse for evaluating transfer-function numerators/denominators at jω.
func (p Poly) EvalComplex(s complex128) complex128 {
	var acc complex128
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*s + complex(p[i], 0)
	}
	return acc
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{0}
	}
	d := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = float64(i) * p[i]
	}
	return d
}

// Degree returns the degree of p ignoring trailing zero coefficients.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return 0
}

// Mul returns the product p·q.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out
}

// Add returns p+q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, b := range q {
		out[i] += b
	}
	return out
}

// Scale returns k·p.
func (p Poly) Scale(k float64) Poly {
	out := make(Poly, len(p))
	for i, c := range p {
		out[i] = k * c
	}
	return out
}

// ChebyshevPoles returns the s-plane pole locations of an n-th order type-I
// Chebyshev low-pass prototype with the given passband ripple in dB and
// unit ripple cut-off frequency. Poles are returned as complex numbers in
// the left half plane. Used by the circuit library to pick component values
// for the fifth-order Chebyshev case study.
func ChebyshevPoles(n int, rippleDB float64) []complex128 {
	if n <= 0 {
		return nil
	}
	eps := math.Sqrt(math.Pow(10, rippleDB/10) - 1)
	mu := math.Asinh(1/eps) / float64(n)
	poles := make([]complex128, 0, n)
	for k := 1; k <= n; k++ {
		theta := math.Pi * (2*float64(k) - 1) / (2 * float64(n))
		re := -math.Sinh(mu) * math.Sin(theta)
		im := math.Cosh(mu) * math.Cos(theta)
		poles = append(poles, complex(re, im))
	}
	return poles
}

// Db converts a linear magnitude to decibels.
func Db(mag float64) float64 { return 20 * math.Log10(mag) }

// FromDb converts decibels to a linear magnitude.
func FromDb(db float64) float64 { return math.Pow(10, db/20) }

// ApproxEqual reports whether a and b agree to within relative tolerance
// rel (or absolute tolerance rel when either side is near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= rel*scale
}
