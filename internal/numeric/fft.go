package numeric

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x, whose length must be a power of two:
//
//	X[k] = Σ_m x[m]·e^(−j2πkm/n)
func FFT(x []complex128) {
	fftDir(x, -1)
}

// IFFT computes the in-place inverse transform, including the 1/n
// normalisation, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fftDir(x, +1)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x []complex128, sign float64) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		//lint:allow nopanic power-of-two length precondition
		panic(fmt.Sprintf("numeric: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}
