package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveComplexIdentity(t *testing.T) {
	a := NewComplexMatrix(3)
	for i := 0; i < 3; i++ {
		a[i][i] = 1
	}
	b := []complex128{1 + 2i, 3, -4i}
	x, err := SolveComplex(CloneComplexMatrix(a), append([]complex128(nil), b...))
	if err != nil {
		t.Fatalf("SolveComplex: %v", err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestSolveComplexKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  ->  x = 2, y = 1
	a := [][]complex128{{2, 1}, {1, -1}}
	b := []complex128{5, 1}
	x, err := SolveComplex(a, b)
	if err != nil {
		t.Fatalf("SolveComplex: %v", err)
	}
	if cmplx.Abs(x[0]-2) > 1e-12 || cmplx.Abs(x[1]-1) > 1e-12 {
		t.Errorf("got x = %v, want [2 1]", x)
	}
}

func TestSolveComplexSingular(t *testing.T) {
	a := [][]complex128{{1, 2}, {2, 4}}
	b := []complex128{1, 2}
	if _, err := SolveComplex(a, b); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestSolveComplexNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := [][]complex128{{0, 1}, {1, 0}}
	b := []complex128{3, 7}
	x, err := SolveComplex(a, b)
	if err != nil {
		t.Fatalf("SolveComplex: %v", err)
	}
	if cmplx.Abs(x[0]-7) > 1e-12 || cmplx.Abs(x[1]-3) > 1e-12 {
		t.Errorf("got %v, want [7 3]", x)
	}
}

func TestSolveComplexDimensionErrors(t *testing.T) {
	if _, err := SolveComplex(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveComplex([][]complex128{{1}}, []complex128{1, 2}); err == nil {
		t.Error("rhs length mismatch should error")
	}
	if _, err := SolveComplex([][]complex128{{1, 2}, {3}}, []complex128{1, 2}); err == nil {
		t.Error("ragged matrix should error")
	}
}

func TestSolveRealMatchesHandSolution(t *testing.T) {
	a := [][]float64{{3, 2, -1}, {2, -2, 4}, {-1, 0.5, -1}}
	b := []float64{1, -2, 0}
	x, err := SolveReal(a, b)
	if err != nil {
		t.Fatalf("SolveReal: %v", err)
	}
	want := []float64{1, -2, -2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// Property: for random well-conditioned systems, solving then multiplying
// back recovers the right-hand side.
func TestSolveComplexResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := NewComplexMatrix(n)
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] = complex(r.NormFloat64(), r.NormFloat64())
			}
			// Diagonal dominance guarantees conditioning.
			a[i][i] += complex(float64(n)*4, 0)
			b[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		orig := CloneComplexMatrix(a)
		borig := append([]complex128(nil), b...)
		x, err := SolveComplex(a, b)
		if err != nil {
			return false
		}
		return ResidualNorm(orig, x, borig) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(pts) != len(want) {
		t.Fatalf("len = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-15 {
			t.Errorf("pts[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1: got %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0: got %v, want nil", got)
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(1, 10000, 5)
	want := []float64{1, 10, 100, 1000, 10000}
	for i := range want {
		if math.Abs(pts[i]/want[i]-1) > 1e-12 {
			t.Errorf("pts[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
}

func TestLogspacePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive bound")
		}
	}()
	Logspace(0, 10, 3)
}
