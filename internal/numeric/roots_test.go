package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-10)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %.12f, want sqrt(2)", x)
	}
}

func TestBisectReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	x, err := Bisect(f, 3, 0, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-1) > 1e-10 {
		t.Errorf("root = %g, want 1", x)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 5, 1e-9); err != nil || x != 0 {
		t.Errorf("lo endpoint: x=%g err=%v", x, err)
	}
	if x, err := Bisect(f, -5, 0, 1e-9); err != nil || x != 0 {
		t.Errorf("hi endpoint: x=%g err=%v", x, err)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	cases := []struct {
		f        func(float64) float64
		lo, hi   float64
		wantRoot float64
	}{
		{func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{func(x float64) float64 { return math.Exp(x) - 3 }, 0, 2, math.Log(3)},
	}
	for i, c := range cases {
		x, err := Brent(c.f, c.lo, c.hi, 1e-13)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if math.Abs(x-c.wantRoot) > 1e-9 {
			t.Errorf("case %d: root = %.12f, want %.12f", i, x, c.wantRoot)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

// Property: Brent finds a point where |f| is tiny for random monotone cubics
// that bracket zero.
func TestBrentProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 5) + 0.1
		b = math.Mod(b, 10)
		fn := func(x float64) float64 { return a*x*x*x + x - b }
		// Monotone increasing; bracket generously.
		x, err := Brent(fn, -20, 20, 1e-13)
		if err != nil {
			return false
		}
		return math.Abs(fn(x)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGoldenMax(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	x, fx := GoldenMax(f, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-7 {
		t.Errorf("argmax = %g, want 3", x)
	}
	if math.Abs(fx) > 1e-12 {
		t.Errorf("max = %g, want 0", fx)
	}
}

func TestGoldenMaxAsymmetric(t *testing.T) {
	// Resonance-shaped curve (like a band-pass gain vs log-frequency)
	// with its peak off-center in the interval.
	f := func(x float64) float64 { return 1 / (1 + (x-2)*(x-2)) }
	x, _ := GoldenMax(f, 0, 10, 1e-9)
	if math.Abs(x-2) > 1e-5 {
		t.Errorf("argmax = %g, want 2", x)
	}
}

func TestExpandBracket(t *testing.T) {
	// Crossing at x = 37; start with a tiny interval.
	f := func(x float64) float64 { return x - 37 }
	a, b, err := ExpandBracket(f, 0, 1, 1000)
	if err != nil {
		t.Fatalf("ExpandBracket: %v", err)
	}
	if !(f(a) <= 0 && f(b) >= 0) {
		t.Errorf("interval [%g, %g] does not bracket the root", a, b)
	}
	x, err := Brent(f, a, b, 1e-12)
	if err != nil || math.Abs(x-37) > 1e-9 {
		t.Errorf("root in expanded bracket = %g (err %v), want 37", x, err)
	}
}

func TestExpandBracketLimit(t *testing.T) {
	f := func(x float64) float64 { return 1 + x } // never crosses for x>0
	if _, _, err := ExpandBracket(f, 0, 1, 50); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestExpandBracketBadInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, _, err := ExpandBracket(f, 1, 1, 10); err == nil {
		t.Error("expected error for hi <= lo")
	}
}
