package repro_test

import (
	"testing"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/waveform"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation section. Run them all with:
//
//	go test -bench=. -benchmem
//
// The per-circuit Table 4 benches correspond to the CPU column of the
// paper's Table 4 (measured on this machine instead of a 1995
// workstation; only the with/without-constraints ratio is meaningful).

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatalf("Run(%s): %v", id, err)
		}
	}
}

// BenchmarkEq1BandPassED regenerates the Equation 1 matrix (Example 1).
func BenchmarkEq1BandPassED(b *testing.B) { benchExperiment(b, "eq1") }

// BenchmarkFig3ConstrainedATPG regenerates Example 2 (Figure 3).
func BenchmarkFig3ConstrainedATPG(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig6Propagation regenerates the Figure 6 OBDD propagation.
func BenchmarkFig6Propagation(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable3Chebyshev regenerates Table 3 (standalone vs embedded
// Chebyshev element deviations).
func BenchmarkTable3Chebyshev(b *testing.B) { benchExperiment(b, "table3") }

// benchTable4 runs the with/without-constraints ATPG pair on one circuit.
func benchTable4(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable4Circuit(name); err != nil {
			b.Fatalf("table4 %s: %v", name, err)
		}
	}
}

// One benchmark per row of Table 4.
func BenchmarkTable4ATPGc432(b *testing.B)  { benchTable4(b, "c432") }
func BenchmarkTable4ATPGc499(b *testing.B)  { benchTable4(b, "c499") }
func BenchmarkTable4ATPGc880(b *testing.B)  { benchTable4(b, "c880") }
func BenchmarkTable4ATPGc1355(b *testing.B) { benchTable4(b, "c1355") }
func BenchmarkTable4ATPGc1908(b *testing.B) { benchTable4(b, "c1908") }

// BenchmarkTable5Propagation regenerates the comparator census of Table 5.
func BenchmarkTable5Propagation(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6Conversion regenerates the direct-access ladder coverage.
func BenchmarkTable6Conversion(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7ConversionMixed regenerates the embedded ladder coverage.
func BenchmarkTable7ConversionMixed(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8StateVar regenerates the validation-board table.
func BenchmarkTable8StateVar(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkExtensionDA regenerates the digital→DAC→analog extension
// experiment (the paper's announced dual configuration).
func BenchmarkExtensionDA(b *testing.B) { benchExperiment(b, "extda") }

// BenchmarkAblation regenerates the ATPG strategy ablation (deterministic
// vs random-phase vs checkpoint targeting vs compaction).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// --- component-level ablation benches ------------------------------------
// These time the individual engines the tables are built from, so the
// cost split (OBDD construction vs vector extraction vs fault simulation
// vs analog sweeps) is visible.

// BenchmarkGoodOBDDsC1908 times building the good-circuit OBDDs of the
// largest benchmark — the fixed cost the paper's method pays up front.
func BenchmarkGoodOBDDsC1908(b *testing.B) {
	c := iscas.MustBenchmark("c1908")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.New(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorExtractionC880 times per-fault constrained test-function
// construction plus SatOne, the paper's backtrack-free inner loop.
func BenchmarkVectorExtractionC880(b *testing.B) {
	c := iscas.MustBenchmark("c880")
	g, err := atpg.New(c)
	if err != nil {
		b.Fatal(err)
	}
	flash := adc.NewFlash(experiments.ComparatorCount, 0, 16)
	g.SetConstraint(flash.ConstraintBDD(g.Manager(), experiments.BoundInputs(c, "c880")))
	fs := faults.Collapse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		g.GenerateVector(f)
	}
}

// BenchmarkFaultSimulationC1908 times bit-parallel fault simulation of a
// 64-vector batch against the full collapsed fault list.
func BenchmarkFaultSimulationC1908(b *testing.B) {
	c := iscas.MustBenchmark("c1908")
	sim := faults.NewSimulator(c)
	fs := faults.Collapse(c)
	var vectors []faults.Vector
	for p := 0; p < 64; p++ {
		v := make(faults.Vector, len(c.Inputs()))
		for j := range v {
			v[j] = (p+j)%3 == 0
		}
		vectors = append(vectors, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Detect(vectors, fs)
	}
}

// BenchmarkAnalogACSolve times one MNA AC solution of the Chebyshev
// filter, the unit operation behind every analog measurement.
func BenchmarkAnalogACSolve(b *testing.B) {
	c := circuits.Chebyshev5()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AC(10e3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorstCaseED times one worst-case element-deviation solve on
// the band-pass (one cell of the Equation 1 matrix).
func BenchmarkWorstCaseED(b *testing.B) {
	c := circuits.BandPass2()
	p := analog.MaxGain{Label: "A1", Out: circuits.BandPassOutput, Lo: 10, Hi: 100e3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analog.WorstCaseED(c, "Rd", p, circuits.BandPassElements,
			analog.DefaultEDOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPropagationC1908 times one composite-value propagation (one
// cell of the Table 5 census) through the largest digital block.
func BenchmarkDPropagationC1908(b *testing.B) {
	dig := iscas.MustBenchmark("c1908")
	flash := adc.NewFlash(experiments.ComparatorCount, 0, 16)
	mx, err := core.NewMixed(circuits.Chebyshev5(), circuits.ChebyshevOutput,
		flash, dig, experiments.BoundInputs(dig, "c1908"))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewPropagator(mx)
	if err != nil {
		b.Fatal(err)
	}
	pattern := core.ComparatorPattern(experiments.ComparatorCount, 8, waveform.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Propagate(pattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigures regenerates the schematic-figure realizations.
func BenchmarkFigures(b *testing.B) { benchExperiment(b, "figures") }
