// Package repro is a from-scratch Go reproduction of
//
//	B. Ayari, N. BenHamida, B. Kaminska,
//	"Automatic Test Vector Generation for Mixed-Signal Circuits",
//	European Design and Test Conference (ED&TC / DATE), 1995.
//
// The system generates functional tests for mixed-signal circuits of the
// form analog block → A/D conversion block → digital block, treated as a
// single entity: analog elements are tested by worst-case deviation
// analysis, the digital block by backtrack-free OBDD stuck-at ATPG under
// the constraint function imposed by the conversion block, and analog
// faults are activated by sine stimuli (Table 1 of the paper) and
// propagated through the digital block as composite values D/D̄ with D as
// the last OBDD variable.
//
// The whole pipeline is instrumented through internal/obs (atomic
// counters, gauges, histograms, spans and a per-work-item structured
// event log, on the standard library only): cmd/msatpg exposes the
// metrics via -stats, -trace-out, -report/-report-text (structured run
// reports built by internal/report), -trace-chrome (Chrome trace_event
// export) and -pprof; cmd/benchgen records them per benchmark with -obs
// in the internal/benchfmt schema; cmd/benchdiff compares two such
// snapshots with regression thresholds; and atpg.Result carries a
// per-run snapshot in its Stats field.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
package repro
