// Package repro is a from-scratch Go reproduction of
//
//	B. Ayari, N. BenHamida, B. Kaminska,
//	"Automatic Test Vector Generation for Mixed-Signal Circuits",
//	European Design and Test Conference (ED&TC / DATE), 1995.
//
// The system generates functional tests for mixed-signal circuits of the
// form analog block → A/D conversion block → digital block, treated as a
// single entity: analog elements are tested by worst-case deviation
// analysis, the digital block by backtrack-free OBDD stuck-at ATPG under
// the constraint function imposed by the conversion block, and analog
// faults are activated by sine stimuli (Table 1 of the paper) and
// propagated through the digital block as composite values D/D̄ with D as
// the last OBDD variable.
//
// The whole pipeline is instrumented through internal/obs (atomic
// counters, gauges, histograms, causal spans — parent-linked through
// contexts, with lane-major ids so sharded runs merge into one
// deterministic trace via Collector.NewChild/Merge — a per-work-item
// structured event log, and a runtime/metrics bridge, on the standard
// library only): cmd/msatpg exposes the
// metrics via -stats, -trace-out, -report/-report-text (structured run
// reports built by internal/report), -trace-chrome (Chrome trace_event
// export) and -live (internal/obs/live, the live ops surface: SSE event
// streaming with Last-Event-ID resume, a snapshot sampler serving
// per-interval deltas and rates at /samples, /healthz and /progressz
// run progress, and pprof endpoints whose CPU samples carry phase=,
// fault=, frame= and element= labels threaded through the run loop);
// cmd/benchgen records them per benchmark with -obs in the versioned
// internal/benchfmt schema; cmd/benchdiff compares two such snapshots
// with regression thresholds and refuses cross-generation diffs; and
// atpg.Result carries a per-run snapshot in its Stats field.
//
// Execution is hardened through internal/guard: every work item (fault,
// analog element, time frame) runs inside a harness that converts
// panics, node/solve budget exhaustion, cancellation and per-item or
// per-run deadlines into typed outcomes (OK, Aborted, TimedOut,
// Canceled) instead of crashes or hangs, retries aborted items with an
// escalating budget, and checkpoints completed faults so a killed run
// resumes without recomputation (msatpg -checkpoint). A deterministic
// chaos injector (internal/guard/chaos) drills the whole pipeline by
// injecting failures at named sites from a seed; msatpg exposes it via
// -chaos-* flags and reports degradation through its exit code (0 all
// classified, 1 degraded, 2 usage error).
//
// The digital run loop scales out through atpg.RunParallel (msatpg
// -workers, benchgen -workers): the collapsed fault list is partitioned
// across worker shards, each owning its own Generator and BDD manager —
// the unique/computed tables are not goroutine-safe, so the runtime
// partitions state instead of locking it — and its own collector lane.
// Discovered vectors cross the shard boundary in deterministic batches
// for cross-shard fault dropping, fault simulation of each batch fans
// out per shard, and results merge back in stable fault-index order, so
// coverage and classification are identical for every worker count and
// the merged trace is byte-stable for a fixed one. A worker death
// (panic, chaos at atpg.shard, deadline) degrades its pending faults to
// typed aborts instead of hanging the run, and shard-tagged checkpoint
// records re-partition on resume under any -workers value.
// core.CompileProgramParallel applies the same pool to the analog
// element×bound tests with one vehicle copy per worker.
//
// The project's cross-cutting contracts (contexts thread through Ctx
// variants, spans end on all paths, mna construction errors are
// consulted, chaos sites come from the internal/guard/chaos registry,
// panics stay behind the guard) are enforced by a standard-library-only
// static analysis suite, internal/lint, run as cmd/msalint — a blocking
// CI job next to go vet. Deliberate exceptions carry inline
// "//lint:allow <check> <reason>" directives.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
package repro
