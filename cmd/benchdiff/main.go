// Command benchdiff compares two BENCH_obs.json benchmark snapshots
// (written by benchgen -obs) and prints a per-metric delta table:
// latency quantiles, BDD cache hit rates, peak node counts and vector
// counts, per circuit and configuration.
//
// Exit status: 0 when no metric crossed its regression threshold, 1 on
// regression (unless -warn-only), 2 on usage or I/O errors. CI runs it
// against a committed baseline with -warn-only so benchmark noise on
// shared runners cannot fail the build, while still surfacing drift in
// the job log.
//
// Usage:
//
//	benchdiff [flags] OLD.json NEW.json
//
// Thresholds are per metric family:
//
//	-latency-slack 0.10   tolerated relative increase of cpu_ns and
//	                      fault latency quantiles (and relative drop
//	                      of vectors_per_sec)
//	-hitrate-slack 0.02   tolerated absolute drop of BDD cache hit
//	                      rates, in points of [0,1]
//	-nodes-slack   0.15   tolerated relative increase of peak_nodes
//	                      and nodes_alloc
//	-strict-counts        vector/untestable count changes regress
//	                      (default true — a count change means the
//	                      generator's behaviour moved, not its speed)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	var (
		latSlack     = flag.Float64("latency-slack", 0.10, "tolerated relative latency increase (0.10 = +10%)")
		hitSlack     = flag.Float64("hitrate-slack", 0.02, "tolerated absolute hit-rate drop in points of [0,1]")
		nodesSlack   = flag.Float64("nodes-slack", 0.15, "tolerated relative node-count increase")
		strictCounts = flag.Bool("strict-counts", true, "treat vector/untestable count changes as regressions")
		warnOnly     = flag.Bool("warn-only", false, "report regressions but exit 0")
		all          = flag.Bool("all", false, "print unchanged metrics too")
		jsonOut      = flag.Bool("json", false, "emit the comparison as a JSON document instead of the table (exit codes unchanged)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json\n\n")
		fmt.Fprintf(os.Stderr, "benchdiff is one of the repo's CI gates, next to `go vet` and the\n")
		fmt.Fprintf(os.Stderr, "msalint static-analysis gate (`go run ./cmd/msalint ./...`).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	// A missing or unparseable snapshot is a usage/input problem (exit
	// 2), never a regression (exit 1): CI gates on exit 1, and a stale
	// baseline must read as "fix the baseline", not "the code got slower".
	oldRep, err := benchfmt.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: cannot read baseline snapshot %s: %v\n", flag.Arg(0), err)
		if errors.Is(err, os.ErrNotExist) {
			fmt.Fprintln(os.Stderr, "benchdiff: regenerate it with: benchgen -obs "+flag.Arg(0))
		}
		os.Exit(2)
	}
	newRep, err := benchfmt.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: cannot read new snapshot %s: %v\n", flag.Arg(1), err)
		os.Exit(2)
	}

	// The header names the baseline and its schema generation, so a CI
	// log always records exactly what the run was compared against. In
	// -json mode stdout is reserved for the document.
	if !*jsonOut {
		fmt.Printf("baseline %s (schema v%d)\n", flag.Arg(0), oldRep.Schema())
	}
	if oldRep.Schema() != newRep.Schema() {
		fmt.Fprintf(os.Stderr, "benchdiff: schema mismatch: %s is v%d but %s is v%d — metrics from different generations do not compare\n",
			flag.Arg(0), oldRep.Schema(), flag.Arg(1), newRep.Schema())
		fmt.Fprintln(os.Stderr, "benchdiff: refresh the baseline with: benchgen -obs "+flag.Arg(0))
		os.Exit(2)
	}

	th := benchfmt.Thresholds{
		LatencySlack:    *latSlack,
		HitRateSlack:    *hitSlack,
		NodesSlack:      *nodesSlack,
		CountsMustMatch: *strictCounts,
	}
	deltas := benchfmt.Diff(oldRep, newRep, th)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no circuits in common between the two snapshots")
		os.Exit(2)
	}
	regressed := 0
	for _, d := range deltas {
		if d.Regressed {
			regressed++
		}
	}
	if *jsonOut {
		doc := jsonReport{
			Baseline:       flag.Arg(0),
			Current:        flag.Arg(1),
			Schema:         oldRep.Schema(),
			BaselineCommit: oldRep.Commit,
			CurrentCommit:  newRep.Commit,
			Thresholds:     th,
			Regressed:      regressed,
			Deltas:         deltas,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	} else if err := benchfmt.WriteTable(os.Stdout, deltas, !*all); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past threshold\n", regressed)
		if !*warnOnly {
			os.Exit(1)
		}
	}
}

// jsonReport is the -json output document: the full per-metric delta
// list plus enough header context (files, commits, schema, thresholds)
// for a downstream tool to interpret it without re-reading the inputs.
type jsonReport struct {
	Baseline       string              `json:"baseline"`
	Current        string              `json:"current"`
	Schema         int                 `json:"schema"`
	BaselineCommit string              `json:"baseline_commit,omitempty"`
	CurrentCommit  string              `json:"current_commit,omitempty"`
	Thresholds     benchfmt.Thresholds `json:"thresholds"`
	Regressed      int                 `json:"regressed"`
	Deltas         []benchfmt.Delta    `json:"deltas"`
}
