package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRealMainUsageErrors(t *testing.T) {
	quotaFile := filepath.Join(t.TempDir(), "quotas.json")
	if err := os.WriteFile(quotaFile, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no dir", nil, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"stray args", []string{"-dir", t.TempDir(), "extra"}, 2},
		{"bad chaos action", []string{"-dir", t.TempDir(), "-chaos-prob", "0.5", "-chaos-action", "explode"}, 2},
		{"unknown chaos site", []string{"-dir", t.TempDir(), "-chaos-prob", "0.5", "-chaos-sites", "no.such.site"}, 2},
		{"unreadable quotas", []string{"-dir", t.TempDir(), "-quotas", quotaFile}, 2},
	} {
		var out, errb bytes.Buffer
		if got := realMain(tc.args, &out, &errb, nil); got != tc.want {
			t.Fatalf("%s: exit = %d, want %d (stderr: %s)", tc.name, got, tc.want, errb.String())
		}
	}
}

func TestRealMainRuntimeError(t *testing.T) {
	// A state "directory" that is a file: the store cannot open, exit 1.
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if got := realMain([]string{"-dir", path}, &out, &errb, nil); got != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", got, errb.String())
	}
}

// TestRealMainServeAndDrain drives a full daemon lifetime in-process:
// boot, submit a job over HTTP, wait for it, then drain via SIGTERM and
// expect a clean exit 0.
func TestRealMainServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var out, errb bytes.Buffer
	go func() {
		exit <- realMain([]string{"-dir", dir, "-addr", "localhost:0", "-sync", "5ms"}, &out, &errb, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("daemon exited %d before binding (stderr: %s)", code, errb.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its listener")
	}

	resp, err := http.Post("http://"+addr+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s (%s)", job.State, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get("http://" + addr + "/api/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// First SIGTERM drains; realMain's handler intercepts it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("drain exit = %d (stderr: %s)", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(errb.String(), "drained") {
		t.Fatalf("stderr missing drain notice: %s", errb.String())
	}
}
