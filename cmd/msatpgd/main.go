// Command msatpgd is the crash-safe ATPG job daemon: clients submit a
// netlist + profile over HTTP/JSON, watch per-fault progress as a
// Server-Sent Events stream, and fetch structured reports and canonical
// results when the job completes.
//
// Usage:
//
//	msatpgd -dir /var/lib/msatpgd              # durable state directory
//	msatpgd -addr localhost:8640 -dir state
//	msatpgd -dir state -max-concurrent 4 -workers 4
//	msatpgd -dir state -quotas quotas.json     # per-tenant budgets
//	msatpgd -dir state -job-retries 3 -backoff 500ms -backoff-max 30s
//	msatpgd -dir state -chaos-prob 0.05 -chaos-seed 7   # fault injection
//
// API (see the README "Running as a service" section for the full
// endpoint and failure-mode tables):
//
//	POST /api/v1/jobs              submit; 202, 400, 429/503 + Retry-After
//	GET  /api/v1/jobs              list jobs
//	GET  /api/v1/jobs/{id}         job record (state, attempts, result)
//	POST /api/v1/jobs/{id}/cancel  cancel queued or running job
//	GET  /api/v1/jobs/{id}/events  per-job SSE stream (Last-Event-ID resume)
//	GET  /api/v1/jobs/{id}/report  structured run report
//	GET  /api/v1/jobs/{id}/result  canonical classification (byte-comparable)
//	/events /varz /samples /healthz /progressz /debug/pprof/*  live ops
//
// Crash safety: jobs live in a journal written via atomic write-rename
// and per-fault progress goes to a checkpoint file per job, so a
// SIGKILL'd daemon restarts, re-queues whatever was running and resumes
// each job from its checkpoint — with classification identical to an
// uninterrupted run, at any worker count. SIGTERM or SIGINT drains:
// admission stops (503), running jobs are interrupted and re-queued for
// the next start, and the journal is persisted before exit. A second
// signal exits immediately.
//
// Exit status:
//
//	0  clean drain
//	1  the daemon failed at runtime (listener died, store unusable)
//	2  usage or input error (bad flags, unreadable quota file)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// realMain is main with the process edges (args, stdio, exit code,
// signals) made explicit so tests can drive full daemon lifetimes
// in-process. ready, when non-nil, receives the bound address once the
// listener is up.
func realMain(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("msatpgd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8640", "listen address for the HTTP API and live ops surface")
	dir := fs.String("dir", "", "durable state directory: job journal + per-job checkpoints (required)")
	maxQueue := fs.Int("max-queue", service.DefaultMaxQueue, "admitted (queued+running) job bound; beyond it submissions get 429")
	maxConc := fs.Int("max-concurrent", service.DefaultMaxConcurrent, "jobs run concurrently")
	workers := fs.Int("workers", 1, "default worker shards per job (specs and tenant quotas may override)")
	jobRetries := fs.Int("job-retries", 2, "extra attempts for a job whose run dies transiently")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "base pause before a job's first retry (grows exponentially, with jitter)")
	backoffMax := fs.Duration("backoff-max", 30*time.Second, "cap on the retry pause")
	quotasPath := fs.String("quotas", "", "JSON per-tenant quota table (see the README); empty = unlimited")
	syncEvery := fs.Duration("sync", service.DefaultSyncInterval, "how often running jobs' SSE high-water marks are persisted")
	ckptEvery := fs.Int("checkpoint-every", service.DefaultCheckpointEvery, "completed faults per checkpoint flush (how much work a SIGKILL may cost)")
	chaosProb := fs.Float64("chaos-prob", 0, "deterministic fault-injection probability per site visit (0 = off)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the chaos injector's site hashing")
	chaosSites := fs.String("chaos-sites", "", "comma-separated injection sites (default: all sites)")
	chaosAction := fs.String("chaos-action", "error", "what a firing site does: panic | error | budget | timeout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: msatpgd -dir STATE [flags]\n\nExit status:\n")
		fmt.Fprintf(stderr, "  0  clean drain (SIGTERM/SIGINT)\n")
		fmt.Fprintf(stderr, "  1  runtime failure\n")
		fmt.Fprintf(stderr, "  2  usage or input error\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "msatpgd: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "msatpgd: -dir is required")
		fs.Usage()
		return 2
	}

	var quotas *service.Quotas
	if *quotasPath != "" {
		var err error
		if quotas, err = service.LoadQuotas(*quotasPath); err != nil {
			fmt.Fprintf(stderr, "msatpgd: %v\n", err)
			return 2
		}
	}

	ctx := context.Background()
	in, err := chaosInjector(*chaosProb, *chaosSeed, *chaosSites, *chaosAction)
	if err != nil {
		fmt.Fprintf(stderr, "msatpgd: %v\n", err)
		return 2
	}
	if in != nil {
		ctx = chaos.Into(ctx, in)
	}

	d, err := service.New(service.Config{
		Dir:             *dir,
		MaxQueue:        *maxQueue,
		MaxConcurrent:   *maxConc,
		DefaultWorkers:  *workers,
		JobRetries:      *jobRetries,
		Backoff:         guard.Backoff{Base: *backoff, Max: *backoffMax, Jitter: 0.5},
		Quotas:          quotas,
		SyncInterval:    *syncEvery,
		CheckpointEvery: *ckptEvery,
		Collector:       obs.Default,
	})
	if err != nil {
		fmt.Fprintf(stderr, "msatpgd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "msatpgd: listen %s: %v\n", *addr, err)
		return 1
	}
	fmt.Fprintf(stderr, "msatpgd: serving on http://%s/ (state in %s)\n", ln.Addr(), *dir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// First SIGTERM/SIGINT drains; a second one force-exits — an
	// operator must always be able to kill a stuck drain.
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(stderr, "msatpgd: draining (signal again to force exit)")
		cancel()
		<-sigc
		fmt.Fprintln(stderr, "msatpgd: forced exit")
		os.Exit(1)
	}()

	if err := d.Serve(serveCtx, ln); err != nil {
		fmt.Fprintf(stderr, "msatpgd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "msatpgd: drained")
	return 0
}

// chaosInjector builds the injector from the -chaos-* flags, or nil
// when injection is off.
func chaosInjector(prob float64, seed int64, sites, action string) (*chaos.Injector, error) {
	if prob <= 0 {
		return nil, nil
	}
	var a chaos.Action
	switch action {
	case "panic":
		a = chaos.Panic
	case "error":
		a = chaos.Error
	case "budget":
		a = chaos.Budget
	case "timeout":
		a = chaos.Timeout
	default:
		return nil, fmt.Errorf("unknown -chaos-action %q (want panic, error, budget or timeout)", action)
	}
	copts := []chaos.Option{chaos.WithAction(a)}
	if sites != "" {
		var list []string
		for _, s := range strings.Split(sites, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			if !chaos.KnownSite(s) {
				return nil, fmt.Errorf("unknown -chaos-sites entry %q (registered sites: %s)",
					s, strings.Join(chaos.Sites(), ", "))
			}
			list = append(list, s)
		}
		//lint:allow chaossite flag values are validated against chaos.KnownSite above
		copts = append(copts, chaos.AtSites(list...))
	}
	return chaos.New(seed, prob, copts...), nil
}
