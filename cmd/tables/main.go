// Command tables regenerates the paper's tables and figures.
//
// Usage:
//
//	tables -table all          # every experiment
//	tables -table table4       # one experiment
//	tables -list               # list experiment ids
//
// Experiment ids: eq1, fig3, fig6, table3, table4, table5, table6,
// table7, table8.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	tableFlag := flag.String("table", "all", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit structured JSON instead of text tables")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return
	}

	ids := experiments.IDs()
	if *tableFlag != "all" {
		ids = []string{*tableFlag}
	}
	type jsonResult struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Data  any    `json:"data"`
	}
	var collected []jsonResult
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			collected = append(collected, jsonResult{ID: res.ID, Title: res.Title, Data: res.Data})
			continue
		}
		fmt.Printf("== %s — %s (%v)\n%s\n", res.ID, res.Title,
			time.Since(start).Round(time.Millisecond), res.Text)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintf(os.Stderr, "tables: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}
}
