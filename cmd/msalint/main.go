// Command msalint runs the project's static analysis suite
// (internal/lint) over the given packages: the machine-checked
// invariants behind the hardened ATPG pipeline — context threading,
// span lifecycle, mna builder-error consultation, the chaos site
// registry, and the panics→errors policy. It is a blocking CI job next
// to go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and argv, so the acceptance
// tests can drive the real command surface in-process. Exit codes:
// 0 no findings, 1 findings reported, 2 usage or load error.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("msalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	dir := fs.String("C", "", "change to `dir` before resolving package patterns")
	checksFlag := fs.String("checks", "", "comma-separated `names` of checks to run (default: all)")
	list := fs.Bool("list", false, "list the registered checks and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: msalint [-json] [-C dir] [-checks names] [-list] [packages...]

Runs the project invariant checks over the packages (default ./...).
Packages load and analyze in parallel, bounded by GOMAXPROCS; output
order and content are identical to a serial run. -checks narrows the
suite to a comma-separated subset; -list prints the registry:

`)
		for _, c := range lint.Checks() {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name(), c.Doc())
		}
		fmt.Fprintf(stderr, `
A finding can be waived — with a mandatory reason, on the same line or
the line above — by an inline directive:

  //lint:allow <check> <reason>

Exit codes: %d clean, %d findings, %d load or usage error.

msalint and a gofmt cleanliness gate run as blocking CI jobs next to
go vet; the committed fixtures under internal/lint/testdata/src must
keep exiting %d (the suite's own acceptance check).
`, exitClean, exitFindings, exitError, exitFindings)
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Doc())
		}
		return exitClean
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		var names []string
		for _, name := range strings.Split(*checksFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		var err error
		if checks, err = lint.SelectChecks(names); err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
	}

	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	findings := lint.Run(pkgs, checks)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "msalint: %d finding(s)\n", len(findings))
		}
		return exitFindings
	}
	return exitClean
}
