package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFixturesExitFindings pins the exit-1 half of the contract: the
// committed fixture packages must keep producing findings.
func TestFixturesExitFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"../../internal/lint/testdata/src/ctxflow",
		"../../internal/lint/testdata/src/spanend",
		"../../internal/lint/testdata/src/mnaerr",
		"../../internal/lint/testdata/src/chaossite",
		"../../internal/lint/testdata/src/nopanic",
		"../../internal/lint/testdata/src/maporder",
		"../../internal/lint/testdata/src/rngsource",
		"../../internal/lint/testdata/src/atomicwrite",
		"../../internal/lint/testdata/src/goleak",
		"../../internal/lint/testdata/src/lockheld",
	}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitFindings, &stdout, &stderr)
	}
	for _, check := range []string{
		"ctxflow", "spanend", "mnaerr", "chaossite", "nopanic",
		"maporder", "rngsource", "atomicwrite", "goleak", "lockheld",
	} {
		if !strings.Contains(stdout.String(), ": "+check+": ") {
			t.Errorf("no %s finding in fixture output:\n%s", check, &stdout)
		}
	}
}

// TestChecksFlagSelects pins -checks: only the named checks run, so the
// maporder fixture is silent when only rngsource is selected, and loud
// when maporder is.
func TestChecksFlagSelects(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-checks", "rngsource",
		"../../internal/lint/testdata/src/maporder"}, &stdout, &stderr)
	if code != exitClean {
		t.Fatalf("-checks rngsource over maporder fixture: exit = %d, want %d\nstdout:\n%s", code, exitClean, &stdout)
	}
	stdout.Reset()
	code = realMain([]string{"-checks", "maporder,rngsource",
		"../../internal/lint/testdata/src/maporder"}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("-checks maporder over maporder fixture: exit = %d, want %d", code, exitFindings)
	}
	if !strings.Contains(stdout.String(), ": maporder: ") {
		t.Errorf("no maporder finding in selected-check output:\n%s", &stdout)
	}
}

// TestChecksFlagUnknownName pins exit 2 with a registry listing for a
// bad -checks value.
func TestChecksFlagUnknownName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-checks", "nosuchcheck",
		"../../internal/lint/testdata/src/clean"}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr.String(), "unknown check") || !strings.Contains(stderr.String(), "maporder") {
		t.Errorf("unknown-check diagnostic should list the registry:\n%s", &stderr)
	}
}

// TestListFlag pins -list: every registered check on stdout, exit 0.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-list"}, &stdout, &stderr)
	if code != exitClean {
		t.Fatalf("-list exit = %d, want %d", code, exitClean)
	}
	for _, check := range []string{
		"ctxflow", "spanend", "mnaerr", "chaossite", "nopanic",
		"maporder", "rngsource", "atomicwrite", "goleak", "lockheld",
	} {
		if !strings.Contains(stdout.String(), check) {
			t.Errorf("-list does not mention %q:\n%s", check, &stdout)
		}
	}
}

// TestCleanExitZero pins the exit-0 half on a violation-free package.
func TestCleanExitZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"../../internal/lint/testdata/src/clean"}, &stdout, &stderr)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitClean, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", &stdout)
	}
}

// TestLoadErrorExitTwo pins exit 2 for unresolvable patterns.
func TestLoadErrorExitTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"./no/such/package"}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if stderr.Len() == 0 {
		t.Error("load error produced no diagnostics on stderr")
	}
}

// TestJSONOutput checks the -json shape: an array of findings with
// check/file/line fields, and exit 1 is still signalled via the code,
// not the stream.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-json", "../../internal/lint/testdata/src/nopanic"}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitFindings, &stderr)
	}
	var findings []struct {
		Check string `json:"check"`
		File  string `json:"file"`
		Line  int    `json:"line"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, &stdout)
	}
	if len(findings) != 1 || findings[0].Check != "nopanic" || findings[0].Line == 0 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

// TestUsageMentionsChecksAndExitCodes keeps the -h text discoverable:
// every check name and the exit-code contract must be documented.
func TestUsageMentionsChecksAndExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-h"}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("-h exit = %d, want %d", code, exitError)
	}
	for _, want := range []string{
		"ctxflow", "spanend", "mnaerr", "chaossite", "nopanic",
		"maporder", "rngsource", "atomicwrite", "goleak", "lockheld",
		"-checks", "-list", "lint:allow", "Exit codes",
	} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("-h text does not mention %q", want)
		}
	}
}
