package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFixturesExitFindings pins the exit-1 half of the contract: the
// committed fixture packages must keep producing findings.
func TestFixturesExitFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"../../internal/lint/testdata/src/ctxflow",
		"../../internal/lint/testdata/src/spanend",
		"../../internal/lint/testdata/src/mnaerr",
		"../../internal/lint/testdata/src/chaossite",
		"../../internal/lint/testdata/src/nopanic",
	}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitFindings, &stdout, &stderr)
	}
	for _, check := range []string{"ctxflow", "spanend", "mnaerr", "chaossite", "nopanic"} {
		if !strings.Contains(stdout.String(), ": "+check+": ") {
			t.Errorf("no %s finding in fixture output:\n%s", check, &stdout)
		}
	}
}

// TestCleanExitZero pins the exit-0 half on a violation-free package.
func TestCleanExitZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"../../internal/lint/testdata/src/clean"}, &stdout, &stderr)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitClean, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", &stdout)
	}
}

// TestLoadErrorExitTwo pins exit 2 for unresolvable patterns.
func TestLoadErrorExitTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"./no/such/package"}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if stderr.Len() == 0 {
		t.Error("load error produced no diagnostics on stderr")
	}
}

// TestJSONOutput checks the -json shape: an array of findings with
// check/file/line fields, and exit 1 is still signalled via the code,
// not the stream.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-json", "../../internal/lint/testdata/src/nopanic"}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitFindings, &stderr)
	}
	var findings []struct {
		Check string `json:"check"`
		File  string `json:"file"`
		Line  int    `json:"line"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, &stdout)
	}
	if len(findings) != 1 || findings[0].Check != "nopanic" || findings[0].Line == 0 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

// TestUsageMentionsChecksAndExitCodes keeps the -h text discoverable:
// every check name and the exit-code contract must be documented.
func TestUsageMentionsChecksAndExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-h"}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("-h exit = %d, want %d", code, exitError)
	}
	for _, want := range []string{"ctxflow", "spanend", "mnaerr", "chaossite", "nopanic", "lint:allow", "Exit codes"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("-h text does not mention %q", want)
		}
	}
}
