// Command diagnose demonstrates fault diagnosis with a full fault
// dictionary: it generates a test set for a benchmark circuit, builds the
// dictionary, injects a (seeded) random stuck-at fault, simulates the
// "tester response", and reports the candidate ambiguity set.
//
// Usage:
//
//	diagnose -circuit c432 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/atpg"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/logic"
)

func main() {
	circuit := flag.String("circuit", "c432", "benchmark circuit (c432, c499, c880, c1355, c1908, fig3, adder283)")
	seed := flag.Int64("seed", 1, "seed selecting the injected fault")
	flag.Parse()
	if err := run(*circuit, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, seed int64) error {
	var c *logic.Circuit
	switch name {
	case "fig3":
		c = iscas.Fig3()
	case "adder283":
		c = iscas.Adder283()
	default:
		var err error
		c, err = iscas.Benchmark(name)
		if err != nil {
			return err
		}
	}
	fs := faults.Collapse(c)
	g, err := atpg.New(c)
	if err != nil {
		return err
	}
	res := g.Run(fs)
	fmt.Printf("%s: %d collapsed faults, %d test vectors (coverage %.1f%%)\n",
		c.Name, len(fs), len(res.Vectors), 100*res.Coverage())

	dict, err := faults.BuildDictionary(c, res.Vectors, fs)
	if err != nil {
		return err
	}
	stats := dict.Diagnosability()
	fmt.Printf("dictionary: %d signature classes, %d fully distinguished faults, largest ambiguity set %d, %d undetected\n",
		stats.Classes, stats.Distinguished, stats.LargestClass, stats.Undetected)

	// Inject a random detectable fault and diagnose it.
	rng := rand.New(rand.NewSource(seed))
	var injected faults.Fault
	for {
		injected = fs[rng.Intn(len(fs))]
		if !dict.ObserveFault(injected).IsZero() {
			break
		}
	}
	fmt.Printf("\ninjected defect: %s\n", injected.Name(c))
	obs := dict.ObserveFault(injected)
	failing := 0
	for _, w := range obs {
		if w != 0 {
			failing++
		}
	}
	fmt.Printf("tester response: %d of %d vectors miscompare\n", failing, len(res.Vectors))
	cands := dict.Diagnose(obs)
	fmt.Printf("diagnosis: %d candidate fault(s):\n", len(cands))
	for _, f := range cands {
		marker := " "
		if f == injected {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, f.Name(c))
	}
	return nil
}
