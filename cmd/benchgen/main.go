// Command benchgen emits the generated benchmark netlists in ISCAS
// ".bench" format, for inspection or for use with external tools, and
// records instrumented ATPG benchmark results for perf tracking.
//
// Usage:
//
//	benchgen -name c432            # one netlist to stdout
//	benchgen -all -dir ./netlists  # every benchmark into a directory
//	benchgen -obs BENCH_obs.json   # timed ATPG per benchmark + obs snapshot stats
//	benchgen -obs - -name c880     # one circuit's results to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/iscas"
	"repro/internal/logic"
)

func main() {
	name := flag.String("name", "", "benchmark to emit (c432, c499, c880, c1355, c1908, fig3, adder283)")
	all := flag.Bool("all", false, "emit every benchmark")
	dir := flag.String("dir", ".", "output directory when -all is used")
	obsOut := flag.String("obs", "", "run instrumented ATPG and write bench results + obs stats (e.g. cache hit rate, peak nodes, vectors/sec) to this JSON file, or - for stdout")
	commit := flag.String("commit", "", "commit SHA stamped into the -obs report (CI passes the build SHA)")
	traceChrome := flag.String("trace-chrome", "", "with -obs: also write a Chrome trace of the ATPG runs, one tid lane per circuit/configuration, to this file")
	workers := flag.Int("workers", 1, "with -obs: run each ATPG configuration on this many worker shards (1 = sequential); stamped into the report")
	flag.Parse()

	if *obsOut != "" {
		if err := emitObs(*obsOut, *name, *commit, *traceChrome, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *all {
		if err := emitAll(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "benchgen: need -name or -all")
		os.Exit(2)
	}
	c, err := lookup(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	if err := c.WriteBench(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
}

func lookup(name string) (*logic.Circuit, error) {
	switch name {
	case "fig3":
		return iscas.Fig3(), nil
	case "adder283":
		return iscas.Adder283(), nil
	default:
		return iscas.Benchmark(name)
	}
}

func emitAll(dir string) error {
	names := append([]string{"fig3", "adder283"}, iscas.BenchmarkNames...)
	for _, n := range names {
		c, err := lookup(n)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, n+".bench")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := c.WriteBench(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
