package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/adc"
	"repro/internal/atpg"
	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/obs"
)

// obsCircuits is the default -obs workload: the Table 4 benchmark set.
var obsCircuits = []string{"c432", "c499", "c880", "c1355", "c1908"}

func benchRun(res *atpg.Result) *benchfmt.Run {
	r := &benchfmt.Run{
		CPUNs:      res.CPU.Nanoseconds(),
		Vectors:    len(res.Vectors),
		Untestable: len(res.Untestable),
	}
	if s := res.Stats; s != nil {
		// Embed the snapshot without its per-fault event log: the
		// counters, histograms and spans carry the drill-down value,
		// and dropping events keeps committed baselines diff-friendly.
		trimmed := *s
		trimmed.Events = nil
		trimmed.EventsDropped = 0
		r.Snapshot = &trimmed
	}
	if secs := res.CPU.Seconds(); secs > 0 {
		r.VectorsPerSec = float64(len(res.Vectors)) / secs
	}
	if s := res.Stats; s != nil {
		r.ITEHitRate = s.Derived["bdd.ite.hit_rate"]
		r.UniqueHitRate = s.Derived["bdd.unique.hit_rate"]
		r.PeakNodes = s.Gauges["bdd.nodes.peak"]
		r.NodesAlloc = s.Counters["bdd.nodes.alloc"]
		if h, ok := s.Histograms["atpg.fault.latency_ns"]; ok {
			r.FaultP50Ns = h.Quantile(0.5)
			r.FaultP99Ns = h.Quantile(0.99)
		}
		// Sharded-runtime figures; absent (zero) on sequential runs.
		r.ShardWorkers = s.Gauges["atpg.shard.workers"]
		r.ShardVectorsExchanged = s.Counters["atpg.shard.vectors_exchanged"]
		r.ShardAborts = s.Counters["atpg.shard.aborts"]
	}
	return r
}

// emitObs runs free and constrained ATPG on each benchmark circuit, each
// under a fresh collector so the embedded snapshots are per-configuration,
// and writes the report as JSON in the benchfmt schema. With traceChrome
// set, the per-configuration collectors are child lanes of one root
// collector instead, and the merged span log is additionally written as a
// Chrome trace — each circuit/configuration on its own tid lane. With
// workers > 1 each configuration runs on the sharded atpg.RunParallel
// runtime; the per-shard lanes nest under the configuration's lane
// ("c880/free/shard0") and the shard figures land in the report, so a
// workers=1 baseline diffed against a workers=N report is the speedup
// measurement.
func emitObs(path, only, commit, traceChrome string, workers int) error {
	names := obsCircuits
	if only != "" {
		names = []string{only}
	}
	report := benchfmt.Report{
		SchemaVersion: benchfmt.CurrentSchemaVersion,
		GeneratedAt:   time.Now(),
		Commit:        commit,
		Workers:       workers,
	}
	var traceRoot *obs.Collector
	var lanes []*obs.Collector
	if traceChrome != "" {
		traceRoot = obs.NewCollector()
	}
	// newCol returns the collector one configuration runs under: a fresh
	// standalone one normally, or a tracked child lane when tracing. A
	// child is still a per-configuration collector — its snapshot holds
	// only its own lane's activity — so the embedded bench stats are
	// identical either way.
	newCol := func(track string) *obs.Collector {
		if traceRoot == nil {
			return obs.NewCollector()
		}
		lane := traceRoot.NewChild(track)
		lanes = append(lanes, lane)
		return lane
	}
	for _, name := range names {
		c, err := iscas.Benchmark(name)
		if err != nil {
			return err
		}
		fs := faults.Collapse(c)
		rec := benchfmt.Circuit{Circuit: name, Faults: len(fs)}

		resFree, err := atpg.RunParallel(c, fs,
			atpg.WithWorkers(workers),
			atpg.WithShardOptions(atpg.WithCollector(newCol(name+"/free"))))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rec.Free = benchRun(resFree)

		flash := adc.NewFlash(experiments.ComparatorCount, 0, float64(experiments.ComparatorCount+1))
		binding := experiments.BoundInputs(c, name)
		resCons, err := atpg.RunParallel(c, fs,
			atpg.WithWorkers(workers),
			atpg.WithShardOptions(atpg.WithCollector(newCol(name+"/constrained"))),
			atpg.WithShardSetup(func(g *atpg.Generator) error {
				// The constraint must live on each shard's own manager.
				g.SetConstraint(flash.ConstraintBDD(g.Manager(), binding))
				return nil
			}))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rec.Constrained = benchRun(resCons)

		report.Circuits = append(report.Circuits, rec)
		fmt.Fprintf(os.Stderr, "benchgen: %s — free %d vec in %v (ITE hit %.1f%%), constrained %d vec in %v (ITE hit %.1f%%)\n",
			name, rec.Free.Vectors, time.Duration(rec.Free.CPUNs).Round(time.Millisecond), 100*rec.Free.ITEHitRate,
			rec.Constrained.Vectors, time.Duration(rec.Constrained.CPUNs).Round(time.Millisecond), 100*rec.Constrained.ITEHitRate)
	}

	if traceRoot != nil {
		traceRoot.Merge(lanes...)
		f, err := os.Create(traceChrome)
		if err != nil {
			return err
		}
		if err := traceRoot.Snapshot().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchgen: wrote Chrome trace (%d lanes) to %s\n", len(lanes), traceChrome)
	}

	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
