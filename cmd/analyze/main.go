// Command analyze runs analog analyses on the built-in filter circuits
// and prints CSV suitable for plotting: a Bode sweep (magnitude dB and
// phase), the input impedance, or the unit-step response.
//
// Usage:
//
//	analyze -circuit bandpass -mode bode -points 200 > bode.csv
//	analyze -circuit chebyshev -mode step -window 2e-3
//	analyze -circuit statevar -mode zin
package main

import (
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"

	"repro/internal/circuits"
	"repro/internal/mna"
	"repro/internal/numeric"
	"repro/internal/waveform"
)

func main() {
	circuit := flag.String("circuit", "bandpass", "bandpass | chebyshev | statevar")
	mode := flag.String("mode", "bode", "bode | zin | step")
	points := flag.Int("points", 200, "sweep points (bode, zin)")
	lo := flag.Float64("lo", 10, "sweep start frequency [Hz]")
	hi := flag.Float64("hi", 1e6, "sweep end frequency [Hz]")
	window := flag.Float64("window", 5e-3, "step-response window [s]")
	flag.Parse()

	var (
		c   *mna.Circuit
		out string
	)
	switch *circuit {
	case "bandpass":
		c, out = circuits.BandPass2(), circuits.BandPassOutput
	case "chebyshev":
		c, out = circuits.Chebyshev5(), circuits.ChebyshevOutput
	case "statevar":
		c, out = circuits.StateVariable(true), circuits.StateVarLP
	default:
		fmt.Fprintf(os.Stderr, "analyze: unknown circuit %q\n", *circuit)
		os.Exit(2)
	}

	var err error
	switch *mode {
	case "bode":
		err = bode(c, out, *lo, *hi, *points)
	case "zin":
		err = zin(c, *lo, *hi, *points)
	case "step":
		err = step(c, out, *window)
	default:
		fmt.Fprintf(os.Stderr, "analyze: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
}

func bode(c *mna.Circuit, out string, lo, hi float64, points int) error {
	fmt.Println("freq_hz,mag_db,phase_deg")
	for _, f := range numeric.Logspace(lo, hi, points) {
		g, err := c.Gain(out, f)
		if err != nil {
			return err
		}
		fmt.Printf("%.6g,%.4f,%.2f\n", f, numeric.Db(cmplx.Abs(g)),
			cmplx.Phase(g)*180/math.Pi)
	}
	return nil
}

func zin(c *mna.Circuit, lo, hi float64, points int) error {
	fmt.Println("freq_hz,zin_mag_ohm,zin_phase_deg")
	for _, f := range numeric.Logspace(lo, hi, points) {
		z, err := c.InputImpedance("Vin", f)
		if err != nil {
			return err
		}
		fmt.Printf("%.6g,%.4f,%.2f\n", f, cmplx.Abs(z), cmplx.Phase(z)*180/math.Pi)
	}
	return nil
}

func step(c *mna.Circuit, out string, window float64) error {
	const n = 2048
	s, err := waveform.StepResponse(c, out, window, n)
	if err != nil {
		return err
	}
	fmt.Println("time_s,v_out")
	dt := window / n
	for m := 0; m < n; m++ {
		fmt.Printf("%.6g,%.6f\n", float64(m)*dt, s[m])
	}
	ts := waveform.SettlingTime(s, window, 0.01*math.Abs(s[n-1]))
	fmt.Fprintf(os.Stderr, "1%% settling time: %.4g s\n", ts)
	return nil
}
