// Command msatpg runs the full mixed-signal automatic test vector
// generation flow on one of the built-in mixed circuits, printing the
// analog element tests (stimulus, comparator, digital vector), the
// conversion-block coverage and the constrained digital stuck-at run.
//
// Usage:
//
//	msatpg                       # Figure 4 vehicle (band-pass + Fig 3)
//	msatpg -circuit chebyshev -digital c880
//	msatpg -circuit chebyshev -digital c1908 -v
//
// Robustness:
//
//	msatpg -timeout 30s -fault-timeout 100ms   # run / per-fault deadlines
//	msatpg -bdd-budget 200000 -retries 2       # node budget, retry aborts
//	msatpg -checkpoint run.ckpt                # resume a killed run
//	msatpg -chaos-prob 0.1 -chaos-seed 7       # deterministic fault injection
//
// Observability:
//
//	msatpg -stats -              # JSON obs snapshot on exit (to stdout)
//	msatpg -stats run.json       # ... or to a file
//	msatpg -trace-out spans.jsonl  # span log, one JSON record per line
//	msatpg -report out.json        # structured run report (JSON)
//	msatpg -report-text -          # ... same report, human-readable
//	msatpg -trace-chrome trace.json  # Chrome trace_event export; load
//	                                 # in chrome://tracing or Perfetto
//	msatpg -live localhost:6060    # live ops server: SSE /events, /varz,
//	                               # /samples, /progressz, pprof with
//	                               # phase=/fault= labels (-pprof is an
//	                               # alias serving the same surface)
//	msatpg -live :6060 -live-sample 500ms -live-linger 30s
//
// Exit status:
//
//	0  every fault classified: tested, dropped or provably untestable
//	1  degraded run — aborted or timed-out faults remain — or the flow
//	   itself failed
//	2  usage or input error (bad flags, unknown circuit, unreadable
//	   checkpoint file)
//
// The snapshot carries the whole pipeline's metrics (BDD cache hit
// rates, peak nodes, per-fault ATPG latency histogram, analog solve
// counts) and the per-phase spans of the analog → conversion → digital
// flow; the metric inventory is documented in the README.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/iscas"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/report"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks failures the user caused with flags or inputs; they
// exit 2 so scripts can tell "you invoked me wrong" from "the run
// degraded" (exit 1).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

type options struct {
	circuit, digital string
	verbose, program bool
	workers          int

	checkpoint   string
	runTimeout   time.Duration
	faultTimeout time.Duration
	bddBudget    int
	retries      int

	chaosProb   float64
	chaosSeed   int64
	chaosSites  string
	chaosAction string

	live       string
	liveSample time.Duration
	liveLinger time.Duration
}

// realMain is main with the process edges (args, stdio, exit code) made
// explicit so tests can drive full runs in-process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("msatpg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var opt options
	fs.StringVar(&opt.circuit, "circuit", "bandpass", "analog block: bandpass | chebyshev")
	fs.StringVar(&opt.digital, "digital", "", "digital block: fig3 (default for bandpass) | c432 | c499 | c880 | c1355 | c1908")
	fs.BoolVar(&opt.verbose, "v", false, "print per-element details")
	fs.BoolVar(&opt.program, "program", false, "compile and print the complete test program instead of the summary")
	fs.IntVar(&opt.workers, "workers", 1, "worker shards for the analog element loop and the digital ATPG (1 = sequential)")
	fs.StringVar(&opt.checkpoint, "checkpoint", "", "record completed faults to this file and resume from it on restart")
	fs.DurationVar(&opt.runTimeout, "timeout", 0, "deadline for the whole run (0 = none)")
	fs.DurationVar(&opt.faultTimeout, "fault-timeout", 0, "deadline per fault / per analog element (0 = none)")
	fs.IntVar(&opt.bddBudget, "bdd-budget", 0, "BDD node allowance per fault; doubles on each retry (0 = uncapped)")
	fs.IntVar(&opt.retries, "retries", 0, "extra attempts for faults aborted by budget, panic or injected failure")
	fs.Float64Var(&opt.chaosProb, "chaos-prob", 0, "deterministic fault-injection probability per site visit (0 = off)")
	fs.Int64Var(&opt.chaosSeed, "chaos-seed", 1, "seed for the chaos injector's site hashing")
	fs.StringVar(&opt.chaosSites, "chaos-sites", "", "comma-separated injection sites (default: all sites)")
	fs.StringVar(&opt.chaosAction, "chaos-action", "panic", "what a firing site does: panic | error | budget | timeout")
	stats := fs.String("stats", "", "write the obs JSON snapshot on exit to this file, or - for stdout")
	traceOut := fs.String("trace-out", "", "write the span log (JSON lines) on exit to this file, or - for stdout")
	reportOut := fs.String("report", "", "write the structured run report as JSON to this file, or - for stdout")
	reportText := fs.String("report-text", "", "write the run report in human-readable form to this file, or - for stdout")
	traceChrome := fs.String("trace-chrome", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	fs.StringVar(&opt.live, "live", "", "serve the live ops surface (SSE /events, /varz, /samples, /progressz, labeled pprof) on this address, e.g. localhost:6060")
	fs.DurationVar(&opt.liveSample, "live-sample", live.DefaultSampleInterval, "live server: snapshot sampler interval for /samples")
	fs.DurationVar(&opt.liveLinger, "live-linger", 0, "live server: keep serving this long after the run completes, so a late scraper still sees the final state")
	pprofAddr := fs.String("pprof", "", "alias for -live (the profiling endpoints are part of the live ops surface)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: msatpg [flags]\n\nExit status:\n")
		fmt.Fprintf(stderr, "  0  every fault classified (tested, dropped or provably untestable)\n")
		fmt.Fprintf(stderr, "  1  degraded run: aborted or timed-out faults remain, or the flow failed\n")
		fmt.Fprintf(stderr, "  2  usage or input error (bad flags, unknown circuit, unreadable checkpoint)\n\n")
		fmt.Fprintf(stderr, "The codebase behind this command is gated in CI by the msalint static\n")
		fmt.Fprintf(stderr, "analysis suite (`go run ./cmd/msalint ./...`); see msalint -h.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "msatpg: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	if opt.live == "" {
		opt.live = *pprofAddr
	} else if *pprofAddr != "" && *pprofAddr != opt.live {
		fmt.Fprintln(stderr, "msatpg: -pprof is an alias for -live; set one address, not two")
		return 2
	}

	// The base context carries the chaos injector, so both the run loop
	// and the live server's SSE write site (via BaseContext) see it.
	ctx := context.Background()
	in, cerr := chaosInjector(opt)
	if cerr != nil {
		fmt.Fprintf(stderr, "msatpg: %v\n", cerr)
		return 2
	}
	if in != nil {
		ctx = chaos.Into(ctx, in)
	}

	var lv *live.Server
	liveDone := make(chan error, 1)
	stopLive := func() {}
	if opt.live != "" {
		ln, lerr := net.Listen("tcp", opt.live)
		if lerr != nil {
			fmt.Fprintf(stderr, "msatpg: -live %s: %v\n", opt.live, lerr)
			return 2
		}
		lv = live.NewServer(obs.Default, live.WithSampleInterval(opt.liveSample))
		liveCtx, cancelLive := context.WithCancel(ctx)
		stopLive = cancelLive
		go func() { liveDone <- lv.Serve(liveCtx, ln) }()
		fmt.Fprintf(stderr, "msatpg: live ops on http://%s/ (events, varz, samples, progressz, pprof)\n", ln.Addr())
	} else {
		close(liveDone)
	}

	degraded, err := run(ctx, opt, stdout, lv)
	if werr := writeObs(*stats, *traceOut, *reportOut, *reportText, *traceChrome); err == nil {
		err = werr
	}
	lv.SetPhase("done")
	if lv != nil && opt.liveLinger > 0 {
		fmt.Fprintf(stderr, "msatpg: run complete; live server lingering %v\n", opt.liveLinger)
		time.Sleep(opt.liveLinger)
	}
	stopLive()
	if serr := <-liveDone; serr != nil {
		fmt.Fprintf(stderr, "msatpg: live server: %v\n", serr)
	}
	if err != nil {
		fmt.Fprintf(stderr, "msatpg: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
	if degraded {
		fmt.Fprintln(stderr, "msatpg: run degraded: aborted or timed-out work remains (rerun with -checkpoint to resume)")
		return 1
	}
	return 0
}

// writeObs dumps the process snapshot, span log, run report and/or
// Chrome trace per the corresponding flags. It runs even when the flow
// failed, so a crash still leaves the metrics behind.
func writeObs(stats, traceOut, reportOut, reportText, traceChrome string) error {
	if stats == "" && traceOut == "" && reportOut == "" && reportText == "" && traceChrome == "" {
		return nil
	}
	snap := obs.Default.Snapshot()
	write := func(flagName, path string, fn func(*os.File) error) error {
		if path == "" {
			return nil
		}
		w, closeFn, err := outFile(path)
		if err != nil {
			return err
		}
		err = fn(w)
		if cerr := closeFn(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", flagName, err)
		}
		return nil
	}
	if err := write("-stats", stats, func(w *os.File) error { return snap.WriteJSON(w) }); err != nil {
		return err
	}
	if err := write("-trace-out", traceOut, func(w *os.File) error { return snap.WriteSpanLog(w) }); err != nil {
		return err
	}
	if reportOut != "" || reportText != "" {
		rep := report.Build(snap)
		if err := write("-report", reportOut, func(w *os.File) error { return rep.WriteJSON(w) }); err != nil {
			return err
		}
		if err := write("-report-text", reportText, func(w *os.File) error { return rep.WriteText(w) }); err != nil {
			return err
		}
	}
	if err := write("-trace-chrome", traceChrome, func(w *os.File) error { return snap.WriteChromeTrace(w) }); err != nil {
		return err
	}
	return nil
}

func outFile(path string) (*os.File, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// chaosInjector builds the injector from the -chaos-* flags, or nil
// when injection is off.
func chaosInjector(opt options) (*chaos.Injector, error) {
	if opt.chaosProb <= 0 {
		return nil, nil
	}
	var action chaos.Action
	switch opt.chaosAction {
	case "panic":
		action = chaos.Panic
	case "error":
		action = chaos.Error
	case "budget":
		action = chaos.Budget
	case "timeout":
		action = chaos.Timeout
	default:
		return nil, usageError{fmt.Errorf("unknown -chaos-action %q (want panic, error, budget or timeout)", opt.chaosAction)}
	}
	copts := []chaos.Option{chaos.WithAction(action)}
	if opt.chaosSites != "" {
		var sites []string
		for _, s := range strings.Split(opt.chaosSites, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			if !chaos.KnownSite(s) {
				return nil, usageError{fmt.Errorf("unknown -chaos-sites entry %q (registered sites: %s)",
					s, strings.Join(chaos.Sites(), ", "))}
			}
			sites = append(sites, s)
		}
		//lint:allow chaossite flag values are validated against chaos.KnownSite above
		copts = append(copts, chaos.AtSites(sites...))
	}
	return chaos.New(opt.chaosSeed, opt.chaosProb, copts...), nil
}

// resolveVehicle validates the -circuit/-digital pair and fills in the
// per-circuit default digital block.
func resolveVehicle(circuit, digital string) (string, string, error) {
	switch circuit {
	case "bandpass":
		if digital == "" {
			digital = "fig3"
		}
		if digital != "fig3" {
			return "", "", usageError{fmt.Errorf("the band-pass vehicle pairs with -digital fig3")}
		}
	case "chebyshev":
		if digital == "" {
			digital = "c880"
		}
		if _, err := iscas.Benchmark(digital); err != nil {
			return "", "", usageError{err}
		}
	default:
		return "", "", usageError{fmt.Errorf("unknown -circuit %q", circuit)}
	}
	return circuit, digital, nil
}

// buildVehicle constructs one independent copy of the resolved vehicle.
// The parallel paths call it once per worker: a Mixed's BDD managers and
// MNA solver state are not goroutine-safe, so workers own copies instead
// of sharing one behind a lock. Construction is deterministic, so every
// copy behaves identically.
func buildVehicle(circuit, digital string) (*core.Mixed, []string, []analog.Parameter, error) {
	switch circuit {
	case "bandpass":
		mx, err := core.NewMixed(circuits.BandPass2(), circuits.BandPassOutput,
			adc.NewFlash(2, 0, 3), iscas.Fig3(), iscas.Fig3ConstrainedLines())
		return mx, circuits.BandPassElements, circuits.BandPassParams(), err
	case "chebyshev":
		dig, err := iscas.Benchmark(digital)
		if err != nil {
			return nil, nil, nil, usageError{err}
		}
		mx, err := core.NewMixed(circuits.Chebyshev5(), circuits.ChebyshevOutput,
			adc.NewFlash(experiments.ComparatorCount, 0, float64(experiments.ComparatorCount+1)),
			dig, experiments.BoundInputs(dig, digital))
		return mx, circuits.ChebyshevElements, circuits.ChebyshevParams(), err
	}
	return nil, nil, nil, usageError{fmt.Errorf("unknown -circuit %q", circuit)}
}

// run executes the three-phase flow. ctx is the process base context
// (carrying the chaos injector, when one is configured); lv, when non-nil,
// is the live ops server whose /healthz and /progressz report the phase.
func run(ctx context.Context, opt options, stdout io.Writer, lv *live.Server) (degraded bool, err error) {
	circuit, digital, err := resolveVehicle(opt.circuit, opt.digital)
	if err != nil {
		return false, err
	}
	if opt.workers < 1 {
		return false, usageError{fmt.Errorf("-workers must be at least 1, got %d", opt.workers)}
	}
	mx, elements, params, err := buildVehicle(circuit, digital)
	if err != nil {
		return false, err
	}

	limits := guard.Limits{
		PerItem:    opt.faultTimeout,
		Run:        opt.runTimeout,
		BDDNodes:   opt.bddBudget,
		MaxRetries: opt.retries,
	}
	runCtx, cancelRun := limits.WithRunContext(ctx)
	defer cancelRun()
	// The root span of the whole invocation: every phase span below is
	// created from runCtx, so the trace is one causal tree and the
	// critical-path section of the report can walk run → phase → item.
	runSpan, runCtx := obs.Default.StartSpanCtx(runCtx, "msatpg.run")
	defer runSpan.End()

	var ckpt *guard.Checkpoint
	if opt.checkpoint != "" {
		scope := fmt.Sprintf("msatpg:%s:%s", circuit, digital)
		ckpt, err = guard.OpenCheckpoint(opt.checkpoint, scope)
		if err != nil {
			return false, usageError{fmt.Errorf("checkpoint: %w", err)}
		}
	}

	fmt.Fprintf(stdout, "mixed circuit: %s → %d-comparator flash → %s (%d PIs, %d bound, %d free)\n",
		mx.Analog.Name(), mx.Conv.NumComparators(), mx.Digital.Name,
		len(mx.Digital.Inputs()), len(mx.Binding), len(mx.FreeInputs()))

	if opt.program {
		factory := func() (*core.Mixed, *analog.Matrix, error) {
			fmx, felems, fparams, ferr := buildVehicle(circuit, digital)
			if ferr != nil {
				return nil, nil, ferr
			}
			matrix, merr := analog.BuildMatrix(fmx.Analog, felems, fparams, analog.DefaultEDOptions())
			if merr != nil {
				return nil, nil, merr
			}
			return fmx, matrix, nil
		}
		prog, err := core.CompileProgramParallel(runCtx, opt.workers, factory, elements)
		if err != nil {
			return false, err
		}
		return false, prog.Write(stdout)
	}

	// Each phase runs in its own closure so the phase span ends by
	// defer on every path, error returns included — the spanend
	// contract the lint suite enforces.

	// 1. Analog element tests through the digital block. Each element
	// runs under the guard harness: a panic or injected failure in one
	// element degrades the run instead of killing it.
	var prop *core.Propagator
	elemAborted, elemTimedOut := 0, 0
	if err := func() error {
		lv.SetPhase("analog")
		span, phaseCtx := obs.Default.StartSpanCtx(runCtx, "phase.analog")
		defer span.End()
		fmt.Fprintln(stdout, "\n-- analog element tests (activation + D propagation) --")
		matrix, err := analog.BuildMatrix(mx.Analog, elements, params, analog.DefaultEDOptions())
		if err != nil {
			return err
		}
		if prop, err = core.NewPropagator(mx); err != nil {
			return err
		}

		// One result slot per element; with -workers > 1 the slots are
		// filled by a pool of independent vehicle copies (the solver and
		// BDD state inside a Mixed are not goroutine-safe) and printed
		// below in element order, so stdout is identical either way.
		type vehicle struct {
			mx     *core.Mixed
			matrix *analog.Matrix
			prop   *core.Propagator
		}
		type elemResult struct {
			verdict core.ElementTest
			out     guard.Outcome
		}
		testElem := func(v *vehicle, i int) elemResult {
			elem := elements[i]
			var r elemResult
			itemCtx, cancelItem := limits.WithItemContext(phaseCtx)
			r.out = guard.Do(itemCtx, obs.Default, "element:"+elem, func(ctx context.Context) error {
				verdict, terr := v.mx.TestAnalogElementCtx(ctx, v.prop, v.matrix, elem, core.UpperBound)
				if terr != nil {
					return terr
				}
				r.verdict = verdict
				return nil
			})
			cancelItem()
			return r
		}
		results := make([]elemResult, len(elements))
		if workers := opt.workers; workers > 1 {
			if workers > len(elements) {
				workers = len(elements)
			}
			vs := make([]*vehicle, workers)
			vs[0] = &vehicle{mx: mx, matrix: matrix, prop: prop}
			buildErrs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 1; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wmx, welems, wparams, werr := buildVehicle(circuit, digital)
					if werr != nil {
						buildErrs[w] = werr
						return
					}
					wmatrix, werr := analog.BuildMatrix(wmx.Analog, welems, wparams, analog.DefaultEDOptions())
					if werr != nil {
						buildErrs[w] = werr
						return
					}
					wprop, werr := core.NewPropagator(wmx)
					if werr != nil {
						buildErrs[w] = werr
						return
					}
					vs[w] = &vehicle{mx: wmx, matrix: wmatrix, prop: wprop}
				}(w)
			}
			wg.Wait()
			for _, berr := range buildErrs {
				if berr != nil {
					return berr
				}
			}
			jobs := make(chan int)
			for _, v := range vs {
				wg.Add(1)
				go func(v *vehicle) {
					defer wg.Done()
					for i := range jobs {
						results[i] = testElem(v, i)
					}
				}(v)
			}
			for i := range elements {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		} else {
			v := &vehicle{mx: mx, matrix: matrix, prop: prop}
			for i := range elements {
				results[i] = testElem(v, i)
			}
		}

		testable := 0
		for i, elem := range elements {
			r := results[i]
			switch r.out.Class {
			case guard.TimedOut:
				elemTimedOut++
				fmt.Fprintf(stdout, "  %-4s TIMED OUT (%s)\n", elem, r.out.Reason)
				continue
			case guard.Aborted, guard.Canceled:
				elemAborted++
				fmt.Fprintf(stdout, "  %-4s ABORTED (%s)\n", elem, r.out.Reason)
				continue
			}
			if r.verdict.Testable {
				testable++
				if opt.verbose {
					fmt.Fprintf(stdout, "  %-4s ED=%-7s via %-5s %v → comparator %d → outputs %v, free inputs %v\n",
						elem, fmtPct(r.verdict.ED), r.verdict.Param, r.verdict.Act.Stim,
						r.verdict.Act.Target, r.verdict.Prop.Outputs, r.verdict.Prop.Vector)
				}
			} else if opt.verbose {
				fmt.Fprintf(stdout, "  %-4s NOT TESTABLE (%s)\n", elem, r.verdict.Reason)
			}
		}
		fmt.Fprintf(stdout, "  %d/%d elements testable through the mixed circuit", testable, len(elements))
		if elemAborted+elemTimedOut > 0 {
			fmt.Fprintf(stdout, " (%d aborted, %d timed-out)", elemAborted, elemTimedOut)
		}
		fmt.Fprintln(stdout)
		return nil
	}(); err != nil {
		return false, err
	}

	// 2. Conversion-block coverage.
	if err := func() error {
		lv.SetPhase("conversion")
		span, _ := obs.Default.StartSpanCtx(runCtx, "phase.conversion")
		defer span.End()
		census, err := mx.CensusPropagation(prop)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n-- conversion block: comparators blocked low=%v high=%v --\n",
			census.BlockedLow, census.BlockedHigh)
		eds := mx.ConversionCoverage(census, adc.DefaultEDOptions())
		fmt.Fprint(stdout, "  ladder EDs: ")
		for i, ed := range eds {
			fmt.Fprintf(stdout, "R%d=%s ", i+1, fmtPct(ed))
		}
		fmt.Fprintln(stdout)
		return nil
	}(); err != nil {
		return false, err
	}

	// 3. Constrained digital stuck-at ATPG.
	var res *atpg.Result
	if err := func() error {
		lv.SetPhase("digital")
		span, phaseCtx := obs.Default.StartSpanCtx(runCtx, "phase.digital")
		defer span.End()
		fmt.Fprintln(stdout, "\n-- digital stuck-at ATPG under the conversion constraints --")
		fs := faults.Collapse(mx.Digital)
		runOpts := []atpg.RunOption{
			atpg.WithContext(phaseCtx),
			atpg.WithLimits(limits),
			atpg.WithWorkers(opt.workers),
			atpg.WithShardSetup(func(g *atpg.Generator) error {
				g.SetConstraint(mx.Conv.ConstraintBDD(g.Manager(), mx.Binding))
				return nil
			}),
		}
		if ckpt != nil {
			runOpts = append(runOpts, atpg.WithCheckpoint(ckpt))
		}
		res, err = atpg.RunParallel(mx.Digital, fs, runOpts...)
		if err != nil {
			return err
		}
		if opt.workers > 1 {
			fmt.Fprintf(stdout, "  sharded across %d workers\n", opt.workers)
		}
		if res.Resumed > 0 {
			fmt.Fprintf(stdout, "  resumed %d faults from checkpoint %s\n", res.Resumed, opt.checkpoint)
		}
		fmt.Fprintf(stdout, "  %d collapsed faults: %d detected, %d untestable, %d aborted, %d timed-out, %d vectors, %v, coverage %.1f%%\n",
			res.Total, res.Detected, len(res.Untestable), len(res.Aborted), len(res.TimedOut),
			len(res.Vectors), res.CPU.Round(1e6), 100*res.Coverage())
		if res.Retries > 0 {
			fmt.Fprintf(stdout, "  %d retries spent recovering aborted faults\n", res.Retries)
		}
		if opt.verbose {
			for i, v := range res.Vectors {
				if i >= 10 {
					fmt.Fprintf(stdout, "  ... and %d more vectors\n", len(res.Vectors)-10)
					break
				}
				fmt.Fprintf(stdout, "  vector %2d: %s\n", i+1, v)
			}
		}
		return nil
	}(); err != nil {
		return false, err
	}

	degraded = len(res.Aborted)+len(res.TimedOut)+elemAborted+elemTimedOut > 0
	return degraded, nil
}

func fmtPct(f float64) string {
	if f > 1e6 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*f)
}
