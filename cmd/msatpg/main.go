// Command msatpg runs the full mixed-signal automatic test vector
// generation flow on one of the built-in mixed circuits, printing the
// analog element tests (stimulus, comparator, digital vector), the
// conversion-block coverage and the constrained digital stuck-at run.
//
// Usage:
//
//	msatpg                       # Figure 4 vehicle (band-pass + Fig 3)
//	msatpg -circuit chebyshev -digital c880
//	msatpg -circuit chebyshev -digital c1908 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/iscas"
)

func main() {
	circuit := flag.String("circuit", "bandpass", "analog block: bandpass | chebyshev")
	digital := flag.String("digital", "", "digital block: fig3 (default for bandpass) | c432 | c499 | c880 | c1355 | c1908")
	verbose := flag.Bool("v", false, "print per-element details")
	program := flag.Bool("program", false, "compile and print the complete test program instead of the summary")
	flag.Parse()

	if err := run(*circuit, *digital, *verbose, *program); err != nil {
		fmt.Fprintf(os.Stderr, "msatpg: %v\n", err)
		os.Exit(1)
	}
}

func run(circuit, digital string, verbose, program bool) error {
	var (
		mx       *core.Mixed
		elements []string
		params   []analog.Parameter
		err      error
	)
	switch circuit {
	case "bandpass":
		if digital == "" {
			digital = "fig3"
		}
		if digital != "fig3" {
			return fmt.Errorf("the band-pass vehicle pairs with -digital fig3")
		}
		mx, err = core.NewMixed(circuits.BandPass2(), circuits.BandPassOutput,
			adc.NewFlash(2, 0, 3), iscas.Fig3(), iscas.Fig3ConstrainedLines())
		elements = circuits.BandPassElements
		params = circuits.BandPassParams()
	case "chebyshev":
		if digital == "" {
			digital = "c880"
		}
		dig, derr := iscas.Benchmark(digital)
		if derr != nil {
			return derr
		}
		mx, err = core.NewMixed(circuits.Chebyshev5(), circuits.ChebyshevOutput,
			adc.NewFlash(experiments.ComparatorCount, 0, float64(experiments.ComparatorCount+1)),
			dig, experiments.BoundInputs(dig, digital))
		elements = circuits.ChebyshevElements
		params = circuits.ChebyshevParams()
	default:
		return fmt.Errorf("unknown -circuit %q", circuit)
	}
	if err != nil {
		return err
	}

	fmt.Printf("mixed circuit: %s → %d-comparator flash → %s (%d PIs, %d bound, %d free)\n",
		mx.Analog.Name(), mx.Conv.NumComparators(), mx.Digital.Name,
		len(mx.Digital.Inputs()), len(mx.Binding), len(mx.FreeInputs()))

	if program {
		matrix, err := analog.BuildMatrix(mx.Analog, elements, params, analog.DefaultEDOptions())
		if err != nil {
			return err
		}
		prog, err := core.CompileProgram(mx, matrix, elements)
		if err != nil {
			return err
		}
		return prog.Write(os.Stdout)
	}

	// 1. Analog element tests through the digital block.
	fmt.Println("\n-- analog element tests (activation + D propagation) --")
	matrix, err := analog.BuildMatrix(mx.Analog, elements, params, analog.DefaultEDOptions())
	if err != nil {
		return err
	}
	prop, err := core.NewPropagator(mx)
	if err != nil {
		return err
	}
	testable := 0
	for _, elem := range elements {
		verdict, err := mx.TestAnalogElement(prop, matrix, elem, core.UpperBound)
		if err != nil {
			return err
		}
		if verdict.Testable {
			testable++
			if verbose {
				fmt.Printf("  %-4s ED=%-7s via %-5s %v → comparator %d → outputs %v, free inputs %v\n",
					elem, fmtPct(verdict.ED), verdict.Param, verdict.Act.Stim,
					verdict.Act.Target, verdict.Prop.Outputs, verdict.Prop.Vector)
			}
		} else if verbose {
			fmt.Printf("  %-4s NOT TESTABLE (%s)\n", elem, verdict.Reason)
		}
	}
	fmt.Printf("  %d/%d elements testable through the mixed circuit\n", testable, len(elements))

	// 2. Conversion-block coverage.
	census, err := mx.CensusPropagation(prop)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- conversion block: comparators blocked low=%v high=%v --\n",
		census.BlockedLow, census.BlockedHigh)
	eds := mx.ConversionCoverage(census, adc.DefaultEDOptions())
	fmt.Print("  ladder EDs: ")
	for i, ed := range eds {
		fmt.Printf("R%d=%s ", i+1, fmtPct(ed))
	}
	fmt.Println()

	// 3. Constrained digital stuck-at ATPG.
	fmt.Println("\n-- digital stuck-at ATPG under the conversion constraints --")
	gen, err := atpg.New(mx.Digital)
	if err != nil {
		return err
	}
	fc := mx.Conv.ConstraintBDD(gen.Manager(), mx.Binding)
	gen.SetConstraint(fc)
	fs := faults.Collapse(mx.Digital)
	res := gen.Run(fs)
	fmt.Printf("  %d collapsed faults: %d detected, %d untestable, %d vectors, %v, coverage %.1f%%\n",
		res.Total, res.Detected, len(res.Untestable), len(res.Vectors), res.CPU.Round(1e6),
		100*res.Coverage())
	if verbose {
		for i, v := range res.Vectors {
			if i >= 10 {
				fmt.Printf("  ... and %d more vectors\n", len(res.Vectors)-10)
				break
			}
			fmt.Printf("  vector %2d: %s\n", i+1, v)
		}
	}
	return nil
}

func fmtPct(f float64) string {
	if f > 1e6 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*f)
}
