// Command msatpg runs the full mixed-signal automatic test vector
// generation flow on one of the built-in mixed circuits, printing the
// analog element tests (stimulus, comparator, digital vector), the
// conversion-block coverage and the constrained digital stuck-at run.
//
// Usage:
//
//	msatpg                       # Figure 4 vehicle (band-pass + Fig 3)
//	msatpg -circuit chebyshev -digital c880
//	msatpg -circuit chebyshev -digital c1908 -v
//
// Observability:
//
//	msatpg -stats -              # JSON obs snapshot on exit (to stdout)
//	msatpg -stats run.json       # ... or to a file
//	msatpg -trace-out spans.jsonl  # span log, one JSON record per line
//	msatpg -report out.json        # structured run report (JSON)
//	msatpg -report-text -          # ... same report, human-readable
//	msatpg -trace-chrome trace.json  # Chrome trace_event export; load
//	                                 # in chrome://tracing or Perfetto
//	msatpg -pprof localhost:6060   # serve net/http/pprof + /debug/vars
//
// The snapshot carries the whole pipeline's metrics (BDD cache hit
// rates, peak nodes, per-fault ATPG latency histogram, analog solve
// counts) and the per-phase spans of the analog → conversion → digital
// flow; the metric inventory is documented in the README.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	circuit := flag.String("circuit", "bandpass", "analog block: bandpass | chebyshev")
	digital := flag.String("digital", "", "digital block: fig3 (default for bandpass) | c432 | c499 | c880 | c1355 | c1908")
	verbose := flag.Bool("v", false, "print per-element details")
	program := flag.Bool("program", false, "compile and print the complete test program instead of the summary")
	stats := flag.String("stats", "", "write the obs JSON snapshot on exit to this file, or - for stdout")
	traceOut := flag.String("trace-out", "", "write the span log (JSON lines) on exit to this file, or - for stdout")
	reportOut := flag.String("report", "", "write the structured run report as JSON to this file, or - for stdout")
	reportText := flag.String("report-text", "", "write the run report in human-readable form to this file, or - for stdout")
	traceChrome := flag.String("trace-chrome", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar (obs counters) on this address, e.g. localhost:6060")
	flag.Parse()

	if *pprofAddr != "" {
		obs.PublishExpvar("obs", obs.Default)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "msatpg: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "msatpg: profiling on http://%s/debug/pprof/ (obs counters at /debug/vars)\n", *pprofAddr)
	}

	err := run(*circuit, *digital, *verbose, *program)
	if werr := writeObs(*stats, *traceOut, *reportOut, *reportText, *traceChrome); err == nil {
		err = werr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "msatpg: %v\n", err)
		os.Exit(1)
	}
}

// writeObs dumps the process snapshot, span log, run report and/or
// Chrome trace per the corresponding flags. It runs even when the flow
// failed, so a crash still leaves the metrics behind.
func writeObs(stats, traceOut, reportOut, reportText, traceChrome string) error {
	if stats == "" && traceOut == "" && reportOut == "" && reportText == "" && traceChrome == "" {
		return nil
	}
	snap := obs.Default.Snapshot()
	write := func(flagName, path string, fn func(*os.File) error) error {
		if path == "" {
			return nil
		}
		w, closeFn, err := outFile(path)
		if err != nil {
			return err
		}
		err = fn(w)
		if cerr := closeFn(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", flagName, err)
		}
		return nil
	}
	if err := write("-stats", stats, func(w *os.File) error { return snap.WriteJSON(w) }); err != nil {
		return err
	}
	if err := write("-trace-out", traceOut, func(w *os.File) error { return snap.WriteSpanLog(w) }); err != nil {
		return err
	}
	if reportOut != "" || reportText != "" {
		rep := report.Build(snap)
		if err := write("-report", reportOut, func(w *os.File) error { return rep.WriteJSON(w) }); err != nil {
			return err
		}
		if err := write("-report-text", reportText, func(w *os.File) error { return rep.WriteText(w) }); err != nil {
			return err
		}
	}
	if err := write("-trace-chrome", traceChrome, func(w *os.File) error { return snap.WriteChromeTrace(w) }); err != nil {
		return err
	}
	return nil
}

func outFile(path string) (*os.File, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(circuit, digital string, verbose, program bool) error {
	var (
		mx       *core.Mixed
		elements []string
		params   []analog.Parameter
		err      error
	)
	switch circuit {
	case "bandpass":
		if digital == "" {
			digital = "fig3"
		}
		if digital != "fig3" {
			return fmt.Errorf("the band-pass vehicle pairs with -digital fig3")
		}
		mx, err = core.NewMixed(circuits.BandPass2(), circuits.BandPassOutput,
			adc.NewFlash(2, 0, 3), iscas.Fig3(), iscas.Fig3ConstrainedLines())
		elements = circuits.BandPassElements
		params = circuits.BandPassParams()
	case "chebyshev":
		if digital == "" {
			digital = "c880"
		}
		dig, derr := iscas.Benchmark(digital)
		if derr != nil {
			return derr
		}
		mx, err = core.NewMixed(circuits.Chebyshev5(), circuits.ChebyshevOutput,
			adc.NewFlash(experiments.ComparatorCount, 0, float64(experiments.ComparatorCount+1)),
			dig, experiments.BoundInputs(dig, digital))
		elements = circuits.ChebyshevElements
		params = circuits.ChebyshevParams()
	default:
		return fmt.Errorf("unknown -circuit %q", circuit)
	}
	if err != nil {
		return err
	}

	fmt.Printf("mixed circuit: %s → %d-comparator flash → %s (%d PIs, %d bound, %d free)\n",
		mx.Analog.Name(), mx.Conv.NumComparators(), mx.Digital.Name,
		len(mx.Digital.Inputs()), len(mx.Binding), len(mx.FreeInputs()))

	if program {
		matrix, err := analog.BuildMatrix(mx.Analog, elements, params, analog.DefaultEDOptions())
		if err != nil {
			return err
		}
		prog, err := core.CompileProgram(mx, matrix, elements)
		if err != nil {
			return err
		}
		return prog.Write(os.Stdout)
	}

	// 1. Analog element tests through the digital block.
	analogSpan := obs.Default.StartSpan("phase.analog")
	fmt.Println("\n-- analog element tests (activation + D propagation) --")
	matrix, err := analog.BuildMatrix(mx.Analog, elements, params, analog.DefaultEDOptions())
	if err != nil {
		return err
	}
	prop, err := core.NewPropagator(mx)
	if err != nil {
		return err
	}
	testable := 0
	for _, elem := range elements {
		verdict, err := mx.TestAnalogElement(prop, matrix, elem, core.UpperBound)
		if err != nil {
			return err
		}
		if verdict.Testable {
			testable++
			if verbose {
				fmt.Printf("  %-4s ED=%-7s via %-5s %v → comparator %d → outputs %v, free inputs %v\n",
					elem, fmtPct(verdict.ED), verdict.Param, verdict.Act.Stim,
					verdict.Act.Target, verdict.Prop.Outputs, verdict.Prop.Vector)
			}
		} else if verbose {
			fmt.Printf("  %-4s NOT TESTABLE (%s)\n", elem, verdict.Reason)
		}
	}
	fmt.Printf("  %d/%d elements testable through the mixed circuit\n", testable, len(elements))
	analogSpan.End()

	// 2. Conversion-block coverage.
	convSpan := obs.Default.StartSpan("phase.conversion")
	census, err := mx.CensusPropagation(prop)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- conversion block: comparators blocked low=%v high=%v --\n",
		census.BlockedLow, census.BlockedHigh)
	eds := mx.ConversionCoverage(census, adc.DefaultEDOptions())
	fmt.Print("  ladder EDs: ")
	for i, ed := range eds {
		fmt.Printf("R%d=%s ", i+1, fmtPct(ed))
	}
	fmt.Println()
	convSpan.End()

	// 3. Constrained digital stuck-at ATPG.
	digitalSpan := obs.Default.StartSpan("phase.digital")
	fmt.Println("\n-- digital stuck-at ATPG under the conversion constraints --")
	gen, err := atpg.New(mx.Digital)
	if err != nil {
		return err
	}
	fc := mx.Conv.ConstraintBDD(gen.Manager(), mx.Binding)
	gen.SetConstraint(fc)
	fs := faults.Collapse(mx.Digital)
	res := gen.Run(fs)
	fmt.Printf("  %d collapsed faults: %d detected, %d untestable, %d vectors, %v, coverage %.1f%%\n",
		res.Total, res.Detected, len(res.Untestable), len(res.Vectors), res.CPU.Round(1e6),
		100*res.Coverage())
	if verbose {
		for i, v := range res.Vectors {
			if i >= 10 {
				fmt.Printf("  ... and %d more vectors\n", len(res.Vectors)-10)
				break
			}
			fmt.Printf("  vector %2d: %s\n", i+1, v)
		}
	}
	digitalSpan.End()
	return nil
}

func fmtPct(f float64) string {
	if f > 1e6 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*f)
}
