package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/report"
)

// TestChaosRunThenCheckpointResume is the acceptance path for the
// hardened execution layer: a run with injected panics on ~10% of the
// fault sites finishes the remaining faults, reports the aborted ones
// under distinct reasons and exits 1; a second run against the same
// checkpoint restores every completed fault, recomputes only the
// aborted ones and exits 0.
//
// obs.Default is process-global, so the second run's report would
// double-count the first run's events; the report assertions therefore
// target run 1 only, and resume is asserted through run 2's stdout.
func TestChaosRunThenCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	repJSON := filepath.Join(dir, "report.json")

	// Run 1: deterministic chaos panics on the per-fault ATPG site.
	var out1, err1 bytes.Buffer
	code := realMain([]string{
		"-chaos-prob", "0.1", "-chaos-seed", "11", "-chaos-action", "panic",
		"-chaos-sites", "atpg.fault",
		"-checkpoint", ckpt,
		"-report", repJSON,
	}, &out1, &err1)
	if code != 1 {
		t.Fatalf("chaos run: exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out1.String(), err1.String())
	}
	if !strings.Contains(err1.String(), "run degraded") {
		t.Errorf("chaos run stderr missing degradation notice:\n%s", err1.String())
	}
	if strings.Contains(out1.String(), " 0 aborted,") {
		t.Fatalf("chaos run reported no aborted faults; injection did not fire:\n%s", out1.String())
	}
	// The run must still have completed the non-injected faults.
	if !strings.Contains(out1.String(), "detected") {
		t.Fatalf("chaos run produced no fault summary:\n%s", out1.String())
	}

	data, rerr := os.ReadFile(repJSON)
	if rerr != nil {
		t.Fatalf("reading report: %v", rerr)
	}
	var rep report.Report
	if jerr := json.Unmarshal(data, &rep); jerr != nil {
		t.Fatalf("parsing report: %v", jerr)
	}
	if rep.Faults == nil {
		t.Fatal("report has no faults section")
	}
	if rep.Faults.Aborted == 0 {
		t.Errorf("report: aborted = 0, want > 0")
	}
	if len(rep.Faults.AbortReasons) == 0 {
		t.Errorf("report: abort_reasons empty, want per-reason breakdown")
	}
	if rep.Faults.AbortReasons["panic"] == 0 {
		t.Errorf("report: abort_reasons = %v, want a \"panic\" bucket", rep.Faults.AbortReasons)
	}
	if rep.Metrics.Panics == 0 {
		t.Errorf("report: recovered-panic counter is 0, want > 0")
	}

	// Run 2: no chaos, same checkpoint — completed faults restore,
	// aborted ones recompute, everything classifies → exit 0.
	var out2, err2 bytes.Buffer
	code = realMain([]string{"-checkpoint", ckpt}, &out2, &err2)
	if code != 0 {
		t.Fatalf("resume run: exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out2.String(), err2.String())
	}
	if !strings.Contains(out2.String(), "resumed") || !strings.Contains(out2.String(), "from checkpoint") {
		t.Errorf("resume run did not report restoring from checkpoint:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), " 0 aborted, 0 timed-out,") {
		t.Errorf("resume run still has degraded faults:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "coverage 100.0%") {
		t.Errorf("resume run did not reach full coverage:\n%s", out2.String())
	}
}

// TestChaosPanicsPlusBudgetExhaustion combines injected panics with a
// starvation-level BDD node budget: the run must finish the unaffected
// faults, file the casualties under *distinct* reasons (a panic bucket
// and a budget bucket naming the exhausted resource) and exit 1.
func TestChaosPanicsPlusBudgetExhaustion(t *testing.T) {
	repJSON := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	code := realMain([]string{
		"-chaos-prob", "0.1", "-chaos-seed", "11", "-chaos-action", "panic",
		"-chaos-sites", "atpg.fault",
		"-bdd-budget", "1",
		"-report", repJSON,
	}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	data, err := os.ReadFile(repJSON)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep report.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	if rep.Faults == nil {
		t.Fatal("report has no faults section")
	}
	var havePanic, haveBudget bool
	for reason, n := range rep.Faults.AbortReasons {
		if n == 0 {
			continue
		}
		if reason == "panic" {
			havePanic = true
		}
		if strings.HasPrefix(reason, "budget") {
			haveBudget = true
		}
	}
	if !havePanic || !haveBudget {
		t.Errorf("abort_reasons = %v, want both a panic and a budget bucket", rep.Faults.AbortReasons)
	}
	// The run must still have made progress on the surviving faults.
	if !strings.Contains(out.String(), "detected") || strings.Contains(out.String(), " 0 detected,") {
		t.Errorf("run detected nothing despite partial injection:\n%s", out.String())
	}
}

// TestWorkersMatchesSequential is the acceptance path for the sharded
// runtime through the CLI: the same vehicle run with -workers 1 and
// -workers 4 exits 0 both times and reports identical fault
// classification (detected/untestable counts), and the parallel run's
// stdout names the shard count.
func TestWorkersMatchesSequential(t *testing.T) {
	summary := regexp.MustCompile(`(\d+) collapsed faults: (\d+) detected, (\d+) untestable`)
	runOnce := func(workers string) (string, []string) {
		t.Helper()
		var out, errw bytes.Buffer
		code := realMain([]string{"-workers", workers}, &out, &errw)
		if code != 0 {
			t.Fatalf("-workers %s: exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s",
				workers, code, out.String(), errw.String())
		}
		m := summary.FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("-workers %s: no fault summary in stdout:\n%s", workers, out.String())
		}
		return out.String(), m[1:]
	}
	_, seq := runOnce("1")
	parOut, par := runOnce("4")
	for i, name := range []string{"total", "detected", "untestable"} {
		if seq[i] != par[i] {
			t.Errorf("%s faults: sequential %s, workers=4 %s", name, seq[i], par[i])
		}
	}
	if !strings.Contains(parOut, "sharded across 4 workers") {
		t.Errorf("parallel run does not report its shard count:\n%s", parOut)
	}
	// -program compiles the same analog/digital sections either way.
	var progSeq, progPar, errw bytes.Buffer
	if code := realMain([]string{"-program"}, &progSeq, &errw); code != 0 {
		t.Fatalf("-program: exit %d\n%s", code, errw.String())
	}
	if code := realMain([]string{"-program", "-workers", "3"}, &progPar, &errw); code != 0 {
		t.Fatalf("-program -workers 3: exit %d\n%s", code, errw.String())
	}
	stripTimes := func(s string) string {
		return regexp.MustCompile(`generated in [^)]+`).ReplaceAllString(s, "generated in X")
	}
	seqPlan, parPlan := stripTimes(progSeq.String()), stripTimes(progPar.String())
	// The analog and conversion sections are byte-identical; the digital
	// vector set may legitimately differ between worker counts, so
	// compare the plans only up to the digital section header.
	cut := strings.Index(seqPlan, "[3] digital")
	pcut := strings.Index(parPlan, "[3] digital")
	if cut < 0 || pcut < 0 {
		t.Fatalf("plans missing digital section:\n%s\n%s", seqPlan, parPlan)
	}
	if seqPlan[:cut] != parPlan[:pcut] {
		t.Errorf("-program analog/conversion sections diverge between worker counts:\n--- workers=1\n%s\n--- workers=3\n%s",
			seqPlan[:cut], parPlan[:pcut])
	}
	if code := realMain([]string{"-workers", "0"}, &progSeq, &errw); code != 2 {
		t.Errorf("-workers 0: exit %d, want 2", code)
	}
}

func TestUsageErrorsExit2(t *testing.T) {
	cases := [][]string{
		{"-circuit", "nope"},
		{"-circuit", "chebyshev", "-digital", "c9999"},
		{"-chaos-prob", "0.5", "-chaos-action", "explode"},
		{"-no-such-flag"},
		{"positional"},
		{"-live", "not-an-address"},
		{"-live", "127.0.0.1:6060", "-pprof", "127.0.0.1:7070"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := realMain(args, &out, &errw); code != 2 {
			t.Errorf("realMain(%v) = %d, want 2\nstderr:\n%s", args, code, errw.String())
		}
	}
}

func TestUsageDocumentsExitCodes(t *testing.T) {
	var out, errw bytes.Buffer
	realMain([]string{"-h"}, &out, &errw)
	usage := errw.String()
	for _, want := range []string{"Exit status", "0  every fault", "1  degraded", "2  usage or input"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage text missing %q:\n%s", want, usage)
		}
	}
}

func TestCorruptCheckpointExit2(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := realMain([]string{"-checkpoint", path}, &out, &errw); code != 2 {
		t.Errorf("corrupt checkpoint: exit code = %d, want 2\nstderr:\n%s", code, errw.String())
	}
}

// lockedBuffer is a bytes.Buffer safe for the concurrent writes the
// live-server test performs (realMain writing stderr in one goroutine,
// the test reading it from another).
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestLiveServerEndToEnd runs the real flow with -live on an ephemeral
// port and scrapes the ops surface while it is up: the announced URL
// must serve /healthz and /progressz, and the run must still exit 0.
func TestLiveServerEndToEnd(t *testing.T) {
	var out lockedBuffer
	var errw lockedBuffer
	code := make(chan int, 1)
	go func() {
		code <- realMain([]string{"-live", "127.0.0.1:0", "-live-linger", "2s"}, &out, &errw)
	}()

	urlRE := regexp.MustCompile(`http://[^/\s]+`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := urlRE.FindString(errw.String()); m != "" {
			base = m
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live server URL never announced on stderr:\n%s", errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return body
	}
	var health struct {
		Status string `json:"status"`
		Phase  string `json:"phase"`
	}
	if err := json.Unmarshal(get("/healthz"), &health); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if health.Status != "ok" || health.Phase == "" {
		t.Errorf("healthz = %+v, want ok with a phase", health)
	}
	if !bytes.Contains(get("/progressz"), []byte(`"faults"`)) {
		t.Error("progressz does not report faults")
	}

	if c := <-code; c != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", c, errw.String())
	}
	if !strings.Contains(errw.String(), "live ops on") {
		t.Errorf("stderr does not announce the live server:\n%s", errw.String())
	}
}
