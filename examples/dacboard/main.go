// The dual configuration the paper announces as future work: a digital
// block (74LS283 adder) whose output code drives an R-2R DAC whose output
// feeds an analog low-pass, with all observability through the analog
// output. The program shows:
//
//  1. how the tester's measurement accuracy at the analog output maps to
//     a minimal observable DAC code change τ,
//  2. stuck-at coverage of the digital block as a function of τ (LSB-only
//     faults disappear first),
//  3. the R-2R ladder's element coverage (the DAC dual of Table 6), and
//  4. one analog element tested through the chain.
//
// Run with: go run ./examples/dacboard
package main

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dac"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/mna"
)

func main() {
	adder := iscas.Adder283()
	conv := dac.NewR2R(5, 2.56)

	// Analog block: a divider-loaded RC low-pass with DC gain 0.5.
	ana := mna.New("loadedrc")
	ana.AddV("Vin", "in", "0", 1, 1)
	ana.AddR("R1", "in", "out", 10e3)
	ana.AddR("R2", "out", "0", 10e3)
	ana.AddC("C", "out", "0", 10e-9)

	for _, accuracy := range []float64{0.01, 0.05, 0.12} {
		mx, err := core.NewMixedDA(adder, []string{"s0", "s1", "s2", "s3", "c4"},
			conv, ana, "out", accuracy)
		if err != nil {
			log.Fatal(err)
		}
		tau, err := mx.Tau()
		if err != nil {
			log.Fatal(err)
		}
		g, err := atpg.New(adder)
		if err != nil {
			log.Fatal(err)
		}
		fs := faults.Collapse(adder)
		res := mx.RunDigitalDA(g, fs, tau)
		fmt.Printf("accuracy %4.1f%% of full scale → τ = %d LSB: %d/%d faults detected, %d vectors\n",
			100*accuracy, tau, res.Detected, res.Total, len(res.Vectors))
	}

	// DAC ladder coverage.
	fmt.Println("\nR-2R ladder element coverage (5% output accuracy):")
	names := conv.ElementNames()
	eds := conv.CoverageTable(dac.DefaultEDOptions())
	for i, n := range names {
		fmt.Printf("  %-4s ED = %s\n", n, fmtPct(eds[i]))
	}
	inl, err := conv.INLMaxLSB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal ladder INL: %.4f LSB\n", inl)

	// One analog element through the chain.
	mx, err := core.NewMixedDA(adder, []string{"s0", "s1", "s2", "s3", "c4"},
		conv, ana, "out", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	ed, err := mx.AnalogElementEDDA("R2", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalog element R2 detectable through the DA chain at %s deviation\n", fmtPct(ed))
}

func fmtPct(f float64) string {
	if f > 1e6 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*f)
}
