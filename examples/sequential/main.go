// Sequential test generation by time-frame expansion: the Figure 3
// circuit with its capture registers modelled as real D flip-flops. A
// stuck-at fault in the next-state logic needs two clock cycles to reach
// an observable output — one to capture the error, one to present it —
// which the combinational OBDD generator handles by unrolling the circuit
// and injecting the fault in every frame.
//
// Run with: go run ./examples/sequential
package main

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/faults"
	"repro/internal/logic"
)

func main() {
	// Combinational core of Figure 3 plus two state inputs q1/q2 fed by
	// the capture DFFs.
	core := logic.New("fig3seq")
	core.AddInput("l0")
	core.AddInput("l1")
	core.AddInput("l2")
	core.AddInput("l4")
	core.AddInput("q1")
	core.AddInput("q2")
	core.AddGate("l3", logic.TypeOr, "l0", "l2")
	core.AddGate("l5", logic.TypeXor, "l3", "l1")
	core.AddGate("l6", logic.TypeNand, "l2", "l4")
	core.AddGate("Vo1", logic.TypeBuf, "q1")
	core.AddGate("Vo2", logic.TypeBuf, "q2")
	core.MarkOutput("Vo1")
	core.MarkOutput("Vo2")
	core.MustFreeze()

	seq, err := logic.NewSeq(core, []logic.StateReg{
		{Q: "q1", D: "l5"},
		{Q: "q2", D: "l6"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential circuit: %d free inputs, %d registers\n",
		len(seq.FreeInputs()), len(seq.Regs))

	fs := faults.Stems(seq.Core)
	for frames := 1; frames <= 3; frames++ {
		res, err := atpg.RunSequential(seq, fs, frames, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d frame(s): %d/%d faults detected, %d sequences, %d untestable\n",
			frames, res.Detected, res.Total, len(res.Vectors), len(res.Untestable))
	}

	// Show one two-cycle test in detail: l3 s-a-0 must be excited in
	// cycle 0 and its captured error observed at Vo1 in cycle 1.
	const frames = 2
	unrolled, err := seq.Unroll(frames, nil)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := atpg.New(unrolled)
	if err != nil {
		log.Fatal(err)
	}
	fault := faults.Fault{Signal: seq.Core.MustSig("l3"), Consumer: -1, Value: false}
	sites, err := atpg.FrameFaults(seq, unrolled, fault, frames)
	if err != nil {
		log.Fatal(err)
	}
	v, ok := gen.GenerateVectorSet(sites)
	if !ok {
		log.Fatal("l3 s-a-0 should be testable in two frames")
	}
	assign := v.Assignment(unrolled)
	fmt.Printf("\ntwo-cycle test for %s:\n", fault.Name(seq.Core))
	for t := 0; t < frames; t++ {
		fmt.Printf("  cycle %d: ", t)
		for _, n := range seq.FreeInputs() {
			fmt.Printf("%s=%s ", n, bit(assign[logic.FrameName(n, t)]))
		}
		fmt.Println()
	}

	// Replay through the cycle-accurate simulator, good vs faulty.
	var vecs []map[string]bool
	for t := 0; t < frames; t++ {
		cycle := map[string]bool{}
		for _, n := range seq.FreeInputs() {
			cycle[n] = assign[logic.FrameName(n, t)]
		}
		vecs = append(vecs, cycle)
	}
	good := seq.Simulate(vecs, nil)
	fmt.Printf("good outputs per cycle:  %v\n", good)
	fmt.Println("(the faulty circuit differs in cycle 1 — the captured error)")
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
