// Example 3 of the paper: the fifth-order Chebyshev low-pass filter
// feeding a conversion block of 15 comparators and 16 ladder resistors,
// whose outputs drive 15 randomly selected inputs of an ISCAS85-class
// benchmark circuit. The program reproduces the experiment end to end:
//
//   - constrained vs unconstrained stuck-at ATPG on the digital block
//     (Table 4's story),
//   - the comparator propagation census (Table 5),
//   - the conversion-ladder coverage inside the mixed circuit (Table 7),
//   - one analog element tested through the whole chain.
//
// Run with: go run ./examples/chebymixed [circuit]   (default c880)
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/iscas"
)

func main() {
	name := "c880"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	dig, err := iscas.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	flash := adc.NewFlash(experiments.ComparatorCount, 0, float64(experiments.ComparatorCount+1))
	binding := experiments.BoundInputs(dig, name)
	mx, err := core.NewMixed(circuits.Chebyshev5(), circuits.ChebyshevOutput, flash, dig, binding)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Chebyshev-5 → flash(15 comparators) → %s; bound inputs: %v\n\n",
		name, binding)

	// Digital ATPG, free vs constrained.
	fs := faults.Collapse(dig)
	gFree, err := atpg.New(dig)
	if err != nil {
		log.Fatal(err)
	}
	free := gFree.Run(fs)
	gCons, err := atpg.New(dig)
	if err != nil {
		log.Fatal(err)
	}
	gCons.SetConstraint(flash.ConstraintBDD(gCons.Manager(), binding))
	cons := gCons.Run(fs)
	fmt.Printf("stuck-at ATPG on %s (%d collapsed faults):\n", name, len(fs))
	fmt.Printf("  without constraints: %3d vectors, %3d untestable, %v\n",
		len(free.Vectors), len(free.Untestable), free.CPU.Round(1e6))
	fmt.Printf("  with    constraints: %3d vectors, %3d untestable, %v\n\n",
		len(cons.Vectors), len(cons.Untestable), cons.CPU.Round(1e6))

	// Comparator census.
	prop, err := core.NewPropagator(mx)
	if err != nil {
		log.Fatal(err)
	}
	census, err := mx.CensusPropagation(prop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparators through which an analog fault cannot propagate:\n")
	fmt.Printf("  deviation < -x%%: %v\n  deviation > +x%%: %v\n\n",
		census.BlockedLow, census.BlockedHigh)

	// Conversion-block coverage inside the mixed circuit.
	eds := mx.ConversionCoverage(census, adc.DefaultEDOptions())
	best := mx.BestConversionComparators(census, adc.DefaultEDOptions())
	fmt.Println("ladder-resistor coverage through the digital block:")
	for i, ed := range eds {
		via := "—"
		if best[i] != 0 {
			via = fmt.Sprintf("Vt%d", best[i])
		}
		fmt.Printf("  R%-2d: ED = %6s via %s\n", i+1, fmtPct(ed), via)
	}

	// One analog element through the whole chain.
	fmt.Println("\nanalog element R4 through the mixed circuit:")
	matrix, err := analog.BuildMatrix(mx.Analog, []string{"R4"}, circuits.ChebyshevParams(),
		analog.DefaultEDOptions())
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := mx.TestAnalogElement(prop, matrix, "R4", core.UpperBound)
	if err != nil {
		log.Fatal(err)
	}
	if !verdict.Testable {
		fmt.Printf("  not testable (%s)\n", verdict.Reason)
		return
	}
	fmt.Printf("  deviation %.1f%% on %s, stimulus %v\n",
		100*verdict.ED, verdict.Param, verdict.Act.Stim)
	fmt.Printf("  comparator %d toggles; observed at %v with free inputs set as computed (%d bits)\n",
		verdict.Act.Target, verdict.Prop.Outputs, len(verdict.Prop.Vector))
}

func fmtPct(f float64) string {
	if f > 1e6 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*f)
}
