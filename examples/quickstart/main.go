// Quickstart: assemble the paper's Figure 4 mixed-signal circuit — a
// second-order band-pass filter feeding a 2-comparator conversion block
// feeding the Figure 3 digital circuit — and generate one complete test:
//
//  1. a digital stuck-at vector that respects the analog constraints, and
//  2. an analog element test: sine stimulus, composite value D at a
//     comparator, and the free-input assignment that propagates it to a
//     primary output.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/iscas"
)

func main() {
	// The three blocks of Figure 4.
	analogBlk := circuits.BandPass2()       // Figure 2 band-pass
	conv := adc.NewFlash(2, 0, 3)           // two comparators, Vt = 1 V, 2 V
	digital := iscas.Fig3()                 // Figure 3 two-output circuit
	binding := iscas.Fig3ConstrainedLines() // comparators drive l0 and l2
	mx, err := core.NewMixed(analogBlk, circuits.BandPassOutput, conv, digital, binding)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed circuit: %s → flash(%d) → %s\n\n",
		analogBlk.Name(), conv.NumComparators(), digital.Name)

	// --- digital part: constrained stuck-at ATPG -------------------
	gen, err := atpg.New(digital)
	if err != nil {
		log.Fatal(err)
	}
	m := gen.Manager()
	// The analog dependency of Example 2: l0 and l2 cannot both be 0.
	gen.SetConstraint(m.Or(m.Var("l0"), m.Var("l2")))

	l3 := digital.MustSig("l3")
	fault := faults.Fault{Signal: l3, Consumer: -1, Value: false}
	vector, ok := gen.GenerateVector(fault)
	if !ok {
		log.Fatalf("%s should be testable", fault.Name(digital))
	}
	fmt.Printf("digital test for %s under Fc = l0+l2: %s  (inputs %v)\n",
		fault.Name(digital), vector, digital.InputNames())

	// The full constrained run over every collapsed fault.
	res := gen.Run(faults.Collapse(digital))
	fmt.Printf("constrained ATPG: %d faults, %d vectors, %d untestable, coverage %.0f%%\n\n",
		res.Total, len(res.Vectors), len(res.Untestable), 100*res.Coverage())

	// --- analog part: element test through the digital block -------
	matrix, err := analog.BuildMatrix(analogBlk,
		[]string{"Rd", "Rg"}, circuits.BandPassParams(), analog.DefaultEDOptions())
	if err != nil {
		log.Fatal(err)
	}
	prop, err := core.NewPropagator(mx)
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := mx.TestAnalogElement(prop, matrix, "Rd", core.UpperBound)
	if err != nil {
		log.Fatal(err)
	}
	if !verdict.Testable {
		log.Fatalf("Rd should be testable (%s)", verdict.Reason)
	}
	fmt.Printf("analog test for element Rd (deviation %.1f%% seen on %s):\n",
		100*verdict.ED, verdict.Param)
	fmt.Printf("  stimulus   : %v\n", verdict.Act.Stim)
	fmt.Printf("  comparator : %d carries %v\n", verdict.Act.Target, verdict.Act.Pattern[verdict.Act.Target-1])
	fmt.Printf("  propagated : outputs %v with free inputs %v\n",
		verdict.Prop.Outputs, verdict.Prop.Vector)
}
