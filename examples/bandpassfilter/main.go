// Example 1 of the paper: element testing of the second-order band-pass
// filter of Figure 2. Computes the worst-case element deviation matrix
// (Equation 1), selects the parameter test set ({A1, A2}), and verifies by
// fault injection that a deviation at the computed bound actually pushes
// the selected parameter out of its ±5% tolerance box.
//
// Run with: go run ./examples/bandpassfilter
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/analog"
	"repro/internal/circuits"
)

func main() {
	c := circuits.BandPass2()
	params := circuits.BandPassParams()

	// Nominal performances.
	vals, err := analog.MeasureAll(c, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nominal performances of the Figure 2 band-pass:")
	for _, p := range params {
		fmt.Printf("  %-4s = %.4g\n", p.Name(), vals[p.Name()])
	}

	// Equation 1: the worst-case deviation matrix.
	matrix, err := analog.BuildMatrix(c, circuits.BandPassElements, params, analog.DefaultEDOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworst-case element deviations ED[%] (— = unobservable):")
	fmt.Printf("%6s", "")
	for _, e := range matrix.Elements {
		fmt.Printf("%8s", e)
	}
	fmt.Println()
	for j, p := range matrix.Params {
		fmt.Printf("%6s", p.Name())
		for i := range matrix.Elements {
			ed := matrix.ED[i][j]
			if analog.Unobservable(ed) {
				fmt.Printf("%8s", "—")
			} else {
				fmt.Printf("%8.1f", 100*ed)
			}
		}
		fmt.Println()
	}

	// Test-set selection: the paper chooses {A1, A2}.
	ts := matrix.SelectTestSet()
	fmt.Printf("\nselected test set: %v (covers all: %v)\n", ts.ParamNames(matrix), ts.Covered())
	for _, e := range matrix.Elements {
		fmt.Printf("  %-3s detectable at %.1f%% deviation\n", e, 100*ts.ElementED[e])
	}

	// Validate the headline number: a deviation in Rd at its computed
	// bound forces A1 out of the ±5% box.
	edRd := ts.ElementED["Rd"]
	dev, err := analog.ParamDeviation(c, "Rd", params[0], edRd*1.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjecting Rd %+0.1f%% ⇒ A1 deviates %+0.1f%% (tolerance box ±5%%): detected = %v\n",
		100*edRd, 100*dev, math.Abs(dev) > 0.05)
}
