// The §3.1 validation board: a state-variable filter, an 8-bit A/D
// converter (AD7820 stand-in) and a 74LS283 4-bit binary adder. The
// program replays the paper's validation:
//
//  1. computes the worst-case component deviations (CD) for the selected
//     performance set,
//  2. injects each fault and "measures" the resulting performance
//     deviation (MPD), confirming every one lands outside the ±5% box,
//  3. shows the fault flipping the ADC code that feeds the adder, and
//  4. generates tests for stuck-at faults at the adder inputs.
//
// Run with: go run ./examples/statevarboard
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/waveform"
)

func main() {
	board := circuits.StateVariable(true)
	params := circuits.StateVarParams()
	converter := adc.NewSAR(8, 0, 2.56)

	vals, err := analog.MeasureAll(board, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nominal performances of the state-variable board:")
	for _, p := range params {
		fmt.Printf("  %-6s = %.4g\n", p.Name(), vals[p.Name()])
	}

	matrix, err := analog.BuildMatrix(board, circuits.StateVarElements, params,
		analog.DefaultEDOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncomponent fault injection (CD = computed worst case, MPD = measured):")
	fmt.Printf("  %-6s %-4s %8s %8s %s\n", "T", "C", "CD[%]", "MPD[%]", "out of ±5% box")
	for _, elem := range circuits.StateVarElements {
		j := matrix.BestParamFor(elem)
		if j < 0 {
			continue
		}
		p := matrix.Params[j]
		cd, _ := matrix.Lookup(elem, p.Name())
		mpd := 0.0
		for _, sign := range []float64{1, -1} {
			d := sign * cd * 1.0001
			if d <= -0.95 {
				continue
			}
			dev, err := analog.ParamDeviation(board, elem, p, d)
			if err != nil {
				log.Fatal(err)
			}
			if math.Abs(dev) > math.Abs(mpd) {
				mpd = dev
			}
		}
		fmt.Printf("  %-6s %-4s %8.1f %8.1f %v\n",
			p.Name(), elem, 100*cd, 100*mpd, math.Abs(mpd) >= 0.05)
	}

	// One end-to-end digital observation: R7 +CD changes the DC level at
	// the buffered output, which changes the 8-bit code at the adder.
	stim := waveform.Stimulus{Kind: waveform.DC, Amplitude: 1}
	good, err := waveform.ResponseAmplitude(board, circuits.StateVarOut, stim)
	if err != nil {
		log.Fatal(err)
	}
	cd, _ := matrix.Lookup("R7", "A2dc")
	restore := board.Perturb("R7", cd*1.01)
	faulty, err := waveform.ResponseAmplitude(board, circuits.StateVarOut, stim)
	restore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nR7 %+0.1f%%: board output %0.3f V → %0.3f V, ADC code %d → %d\n",
		100*cd, good, faulty, converter.Convert(good), converter.Convert(faulty))

	// Digital part: the 74LS283 adder.
	adder := iscas.Adder283()
	gen, err := atpg.New(adder)
	if err != nil {
		log.Fatal(err)
	}
	fs := faults.Collapse(adder)
	res := gen.Run(fs)
	fmt.Printf("\n74LS283 stuck-at ATPG: %d faults, %d vectors, %d untestable, coverage %.0f%%\n",
		res.Total, len(res.Vectors), len(res.Untestable), 100*res.Coverage())
	fmt.Println("first vectors (a3..a0 b3..b0 c0 order follows input list):")
	for i, v := range res.Vectors {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(res.Vectors)-5)
			break
		}
		fmt.Printf("  %s\n", v)
	}
}
